package obs

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestExpBucketsShape(t *testing.T) {
	b := ExpBuckets(1e5, 7, 12)
	if len(b) != 7*12+1 {
		t.Fatalf("len = %d, want %d", len(b), 7*12+1)
	}
	if b[0] != 1e5 {
		t.Fatalf("first bound = %g, want 1e5", b[0])
	}
	if math.Abs(b[len(b)-1]-1e12)/1e12 > 1e-9 {
		t.Fatalf("last bound = %g, want ~1e12", b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending at %d: %g <= %g", i, b[i], b[i-1])
		}
	}
}

// exactQuantile is the nearest-rank reference the histogram estimate is
// judged against.
func exactQuantile(sorted []float64, q float64) float64 {
	rank := int(math.Ceil(q*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// TestQuantileAccuracySeeded draws seeded samples from distributions
// spanning several decades and checks the bucket-interpolated quantiles
// against the exact nearest-rank reference. With 12 buckets per decade
// the bucket ratio is 10^(1/12) ~= 1.21, so every estimate must land
// within ~21% of the exact value (one bucket width).
func TestQuantileAccuracySeeded(t *testing.T) {
	const ratio = 1.215 // one bucket width of slack, log-spaced at 12/decade
	dists := []struct {
		name string
		gen  func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return 1e6 + r.Float64()*999e6 }},
		{"lognormal", func(r *rand.Rand) float64 { return 1e7 * math.Exp(r.NormFloat64()) }},
		{"bimodal", func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return 2e6 + r.Float64()*1e6
			}
			return 4e8 + r.Float64()*1e8
		}},
	}
	for _, d := range dists {
		t.Run(d.name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			reg := NewRegistry()
			h := reg.Histogram("lat", LatencyBounds)
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := d.gen(r)
				h.Observe(v)
				samples = append(samples, v)
			}
			sort.Float64s(samples)
			snap := h.Snapshot()
			for _, q := range []float64{0.50, 0.90, 0.95, 0.99} {
				exact := exactQuantile(samples, q)
				est := snap.Quantile(q)
				if est < exact/ratio || est > exact*ratio {
					t.Errorf("q=%.2f: estimate %g vs exact %g (off by %.1f%%, budget %.0f%%)",
						q, est, exact, 100*math.Abs(est-exact)/exact, 100*(ratio-1))
				}
			}
			if snap.P50 != snap.Quantile(0.50) || snap.P99 != snap.Quantile(0.99) {
				t.Errorf("snapshot P50/P99 fields disagree with Quantile()")
			}
		})
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	reg := NewRegistry()

	empty := reg.Histogram("empty", LatencyBounds).Snapshot()
	if got := empty.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", got)
	}
	if empty.P50 != 0 || empty.P95 != 0 || empty.P99 != 0 {
		t.Errorf("empty histogram snapshot quantile fields: %+v", empty)
	}

	single := reg.Histogram("single", LatencyBounds)
	single.Observe(3e6)
	s := single.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Quantile(q); got != 3e6 {
			t.Errorf("single-value quantile(%g) = %g, want 3e6", q, got)
		}
	}

	// Values exactly on a bucket bound land in that bucket (inclusive
	// upper bounds); the estimate must stay within the observed range.
	onBound := reg.Histogram("onbound", []float64{10, 100, 1000})
	for i := 0; i < 10; i++ {
		onBound.Observe(100)
	}
	ob := onBound.Snapshot()
	if got := ob.Quantile(0.5); got != 100 {
		t.Errorf("on-bound quantile = %g, want 100 (min=max clamp)", got)
	}

	// Overflow-bucket values clamp to the observed Max, not +Inf.
	over := reg.Histogram("over", []float64{10, 100})
	over.Observe(5000)
	over.Observe(7000)
	ov := over.Snapshot()
	if got := ov.Quantile(0.99); got > 7000 || got < 5000 {
		t.Errorf("overflow quantile = %g, want within [5000, 7000]", got)
	}
	if got := ov.Quantile(1); got != 7000 {
		t.Errorf("q=1 = %g, want Max 7000", got)
	}

	// q<=0 answers Min, q>=1 answers Max.
	if got := ov.Quantile(0); got != 5000 {
		t.Errorf("q=0 = %g, want Min 5000", got)
	}
}

// TestHistogramQuantileRace hammers Observe from several goroutines while
// snapshots (with quantile computation) are taken concurrently; run under
// -race this pins the histogram's concurrency contract for the service
// latency path.
func TestHistogramQuantileRace(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", LatencyBounds)
	var observers sync.WaitGroup
	for g := 0; g < 4; g++ {
		observers.Add(1)
		go func(g int) {
			defer observers.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				h.Observe(1e5 + r.Float64()*1e9)
			}
		}(g)
	}
	stop := make(chan struct{})
	var reader sync.WaitGroup
	reader.Add(1)
	go func() {
		defer reader.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := h.Snapshot()
				if s.Count > 0 && (s.P50 < s.Min || s.P99 > s.Max) {
					t.Errorf("quantiles outside [min, max]: %+v", s)
					return
				}
			}
		}
	}()
	observers.Wait()
	close(stop)
	reader.Wait()
	s := h.Snapshot()
	if s.Count != 20000 {
		t.Fatalf("count = %d, want 20000", s.Count)
	}
	if s.P50 <= 0 || s.P95 < s.P50 || s.P99 < s.P95 {
		t.Fatalf("quantiles not monotone: %+v", s)
	}
}
