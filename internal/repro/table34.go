package repro

import (
	"fmt"
	"strings"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
)

// SweepPoint is one (threshold, area ratio) sample of a quality sweep.
type SweepPoint struct {
	Threshold float64 // ER fraction, or AEM rate for the AEM sweep
	AreaRatio float64
}

// SweepSeries is the quality sweep of one benchmark (Fig. 4 / Fig. 5).
type SweepSeries struct {
	Circuit string
	Points  []SweepPoint
}

// Table3Row is the ER-constraint quality summary of one benchmark: the
// average area ratio over the seven ER thresholds for the local-estimation
// flow ("SASIMI") and the batch-estimation flow ("modified SASIMI"), plus
// the measured CPM runtime share and the paper's reported columns.
type Table3Row struct {
	Circuit       string
	OriginalArea  float64
	IO            string
	CPMShare      float64 // fraction of flow runtime spent building CPMs
	LocalRatio    float64 // measured, local estimator
	BatchRatio    float64 // measured, batch estimator
	PaperCPMShare float64
	PaperSASIMI   float64
	PaperWu       float64
	PaperModified float64
}

// erSweep runs the batch-estimator flow across the ER thresholds for one
// benchmark, returning the per-threshold ratios plus aggregates.
func erSweep(name string, opt Options, est sasimi.EstimatorKind) (SweepSeries, float64, float64, error) {
	golden := benchOrDie(name, bench.ByName)
	s := SweepSeries{Circuit: name}
	sum := 0.0
	var cpmShare float64
	var runs int
	for _, th := range erThresholds {
		res, err := sasimi.Run(golden, sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				Threshold:   th,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			Estimator: est,
		})
		if err != nil {
			return s, 0, 0, fmt.Errorf("%s @ %.3f: %w", name, th, err)
		}
		ratio := res.AreaRatio()
		s.Points = append(s.Points, SweepPoint{Threshold: th, AreaRatio: ratio})
		sum += ratio
		if res.TotalTime > 0 {
			cpmShare += float64(res.CPMTime) / float64(res.TotalTime)
		}
		runs++
	}
	return s, sum / float64(len(erThresholds)), cpmShare / float64(runs), nil
}

// ERQuality bundles the two products of the ER sweep so the expensive flow
// runs happen once: the per-threshold series of the batch flow (Fig. 4)
// and the averaged comparison rows (Table 3).
type ERQuality struct {
	Series []SweepSeries
	Rows   []Table3Row
}

// RunERQuality executes the ER-constraint evaluation: for every benchmark,
// the batch-estimator flow across the seven thresholds (yielding Fig. 4)
// and the local-estimator flow across the same thresholds (completing
// Table 3).
func RunERQuality(opt Options) (*ERQuality, error) {
	opt = opt.fill()
	out := &ERQuality{}
	for _, b := range table3Benchmarks {
		if opt.Fast && skipInFast(b.name) {
			continue
		}
		golden := benchOrDie(b.name, bench.ByName)
		_, localAvg, _, err := erSweep(b.name, opt, sasimi.EstimatorLocal)
		if err != nil {
			return nil, err
		}
		s, batchAvg, cpmShare, err := erSweep(b.name, opt, sasimi.EstimatorBatch)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, s)
		lib := defaultLib()
		out.Rows = append(out.Rows, Table3Row{
			Circuit:       b.name,
			OriginalArea:  lib.NetworkArea(golden),
			IO:            fmt.Sprintf("%d/%d", golden.NumInputs(), golden.NumOutputs()),
			CPMShare:      cpmShare,
			LocalRatio:    localAvg,
			BatchRatio:    batchAvg,
			PaperCPMShare: b.paperCPM / 100,
			PaperSASIMI:   b.paperSAS,
			PaperWu:       b.paperWu,
			PaperModified: b.paperModif,
		})
	}
	return out, nil
}

// Fig4 regenerates the area-ratio-vs-ER-threshold sweep of the modified
// SASIMI (batch estimator) for the twelve benchmarks. Prefer RunERQuality
// when Table 3 is needed too — it shares the flow runs.
func Fig4(opt Options) ([]SweepSeries, error) {
	opt = opt.fill()
	var out []SweepSeries
	for _, b := range table3Benchmarks {
		if opt.Fast && skipInFast(b.name) {
			continue
		}
		s, _, _, err := erSweep(b.name, opt, sasimi.EstimatorBatch)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Table3 regenerates the ER-constraint comparison: measured local-estimator
// flow vs measured batch-estimator flow, with the paper's SASIMI / Wu /
// modified columns for reference (the Wu column is only ever the paper's
// published number, exactly as in the paper itself).
func Table3(opt Options) ([]Table3Row, error) {
	q, err := RunERQuality(opt)
	if err != nil {
		return nil, err
	}
	return q.Rows, nil
}

// RenderTable3 formats the quality comparison.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	sb.WriteString("Table 3: average area ratio over 7 ER thresholds\n")
	fmt.Fprintf(&sb, "%-8s %8s %-9s %7s | %8s %8s | %8s %8s %8s %8s\n",
		"circuit", "area", "I/O", "cpm%", "local", "batch", "p.cpm%", "p.sasimi", "p.wu", "p.modif")
	var sumL, sumB, sumPS, sumPW, sumPM, sumC float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %8.0f %-9s %6.1f%% | %8.3f %8.3f | %7.1f%% %8.3f %8.3f %8.3f\n",
			r.Circuit, r.OriginalArea, r.IO, r.CPMShare*100,
			r.LocalRatio, r.BatchRatio,
			r.PaperCPMShare*100, r.PaperSASIMI, r.PaperWu, r.PaperModified)
		sumL += r.LocalRatio
		sumB += r.BatchRatio
		sumPS += r.PaperSASIMI
		sumPW += r.PaperWu
		sumPM += r.PaperModified
		sumC += r.CPMShare
	}
	n := float64(len(rows))
	if n > 0 {
		fmt.Fprintf(&sb, "%-8s %8s %-9s %6.1f%% | %8.3f %8.3f | %8s %8.3f %8.3f %8.3f\n",
			"mean", "", "", sumC/n*100, sumL/n, sumB/n, "", sumPS/n, sumPW/n, sumPM/n)
	}
	return sb.String()
}

// RenderSweep formats a Fig. 4 / Fig. 5 sweep as one block per circuit.
func RenderSweep(title, thLabel string, series []SweepSeries) string {
	var sb strings.Builder
	sb.WriteString(title + "\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "-- %s --\n%12s %10s\n", s.Circuit, thLabel, "area ratio")
		for _, p := range s.Points {
			fmt.Fprintf(&sb, "%11.3f%% %10.3f\n", p.Threshold*100, p.AreaRatio)
		}
	}
	return sb.String()
}

// Table4Row is the AEM-constraint quality summary of one arithmetic
// benchmark: measured local and batch average area ratios over the AEM-rate
// thresholds, with the paper's reported columns.
type Table4Row struct {
	Circuit       string
	OriginalArea  float64
	LocalRatio    float64
	BatchRatio    float64
	PaperSASIMI   float64
	PaperModified float64
}

// aemSweep runs the AEM-constrained flow over the AEM-rate thresholds.
func aemSweep(name string, opt Options, est sasimi.EstimatorKind) (SweepSeries, float64, error) {
	golden := benchOrDie(name, bench.ByName)
	maxVal := emetric.MaxOutputValue(golden.NumOutputs())
	s := SweepSeries{Circuit: name}
	sum := 0.0
	for _, rate := range aemRateThresholds {
		res, err := sasimi.Run(golden, sasimi.Config{
			Budget: flow.Budget{
				Metric:      core.MetricAEM,
				Threshold:   rate * maxVal,
				NumPatterns: opt.M,
				Seed:        opt.Seed,
			},
			Estimator: est,
		})
		if err != nil {
			return s, 0, fmt.Errorf("%s @ rate %.4f: %w", name, rate, err)
		}
		ratio := res.AreaRatio()
		s.Points = append(s.Points, SweepPoint{Threshold: rate, AreaRatio: ratio})
		sum += ratio
	}
	return s, sum / float64(len(aemRateThresholds)), nil
}

// AEMQuality bundles the two products of the AEM sweep: the per-threshold
// series of the batch flow (Fig. 5) and the averaged comparison rows
// (Table 4), sharing the flow runs.
type AEMQuality struct {
	Series []SweepSeries
	Rows   []Table4Row
}

// RunAEMQuality executes the AEM-constraint evaluation once for both
// Fig. 5 and Table 4.
func RunAEMQuality(opt Options) (*AEMQuality, error) {
	opt = opt.fill()
	out := &AEMQuality{}
	for _, b := range table4Benchmarks {
		if opt.Fast && b.name != "rca32" && b.name != "mul8" {
			continue
		}
		golden := benchOrDie(b.name, bench.ByName)
		_, localAvg, err := aemSweep(b.name, opt, sasimi.EstimatorLocal)
		if err != nil {
			return nil, err
		}
		s, batchAvg, err := aemSweep(b.name, opt, sasimi.EstimatorBatch)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, s)
		out.Rows = append(out.Rows, Table4Row{
			Circuit:       b.name,
			OriginalArea:  defaultLib().NetworkArea(golden),
			LocalRatio:    localAvg,
			BatchRatio:    batchAvg,
			PaperSASIMI:   b.paperSAS,
			PaperModified: b.paperModif,
		})
	}
	return out, nil
}

// Fig5 regenerates the area-ratio-vs-AEM-rate sweep for the five
// arithmetic benchmarks with the batch estimator. Prefer RunAEMQuality
// when Table 4 is needed too.
func Fig5(opt Options) ([]SweepSeries, error) {
	opt = opt.fill()
	var out []SweepSeries
	for _, b := range table4Benchmarks {
		if opt.Fast && b.name != "rca32" && b.name != "mul8" {
			continue
		}
		s, _, err := aemSweep(b.name, opt, sasimi.EstimatorBatch)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// Table4 regenerates the AEM-constraint comparison between the
// local-estimation flow (original SASIMI stand-in) and the batch flow.
func Table4(opt Options) ([]Table4Row, error) {
	q, err := RunAEMQuality(opt)
	if err != nil {
		return nil, err
	}
	return q.Rows, nil
}

// RenderTable4 formats the AEM comparison.
func RenderTable4(rows []Table4Row) string {
	var sb strings.Builder
	sb.WriteString("Table 4: average area ratio under AEM constraint\n")
	fmt.Fprintf(&sb, "%-8s %8s | %8s %8s | %8s %8s\n",
		"circuit", "area", "local", "batch", "p.sasimi", "p.modif")
	var sumL, sumB, sumPS, sumPM float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-8s %8.0f | %8.3f %8.3f | %8.3f %8.3f\n",
			r.Circuit, r.OriginalArea, r.LocalRatio, r.BatchRatio, r.PaperSASIMI, r.PaperModified)
		sumL += r.LocalRatio
		sumB += r.BatchRatio
		sumPS += r.PaperSASIMI
		sumPM += r.PaperModified
	}
	if n := float64(len(rows)); n > 0 {
		fmt.Fprintf(&sb, "%-8s %8s | %8.3f %8.3f | %8.3f %8.3f\n",
			"mean", "", sumL/n, sumB/n, sumPS/n, sumPM/n)
	}
	return sb.String()
}

func skipInFast(name string) bool {
	switch name {
	case "c2670", "c3540", "c5315", "c7552", "alu4", "cla32", "ksa32", "wtm8":
		return true
	}
	return false
}
