package core

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/obs"
	"batchals/internal/par"
	"batchals/internal/sim"
)

var (
	statPartialER  = obs.Default().Counter("cpm_partial_er_queries_total")
	statPartialAEM = obs.Default().Counter("cpm_partial_aem_queries_total")
)

// BuildParallel constructs a CPM bit-identical to Build's, with the pattern
// axis sharded across the pool's workers.
//
// The reverse topological recursion of Eq. (2) is word-local: the value of
// word w of P[n][o] depends only on word w of the fanout rows (finalised
// earlier in the same shard's reverse-topological pass) and word w of the
// Boolean difference, which is a pure function of the simulated values.
// Each worker therefore runs the full recursion restricted to its shard's
// word range, writing disjoint uint64 words of the shared rows, and every
// word ends up the result of exactly the operation sequence the sequential
// builder would apply to it — independent of worker count and schedule.
// Shard-local Any early-exits skip only folds that are no-ops for the
// shard's words. A nil or single-worker pool falls through to Build.
func BuildParallel(n *circuit.Network, vals *sim.Values, pool *par.Pool) *CPM {
	if pool.Workers() <= 1 {
		return Build(n, vals)
	}
	start := time.Now()
	m := vals.M
	numOut := n.NumOutputs()
	c := &CPM{
		net:     n,
		vals:    vals,
		m:       m,
		o:       numOut,
		p:       make([][]*bitvec.Vec, n.NumSlots()),
		anyProp: make([]atomic.Pointer[bitvec.Vec], n.NumSlots()),
	}
	order := n.TopoOrder()
	allocRows(c, order)
	for o, out := range n.Outputs() {
		c.p[out.Node][o].Fill()
	}
	// Fanout lists are shared read-only by every worker; resolve them once
	// so workers do not race the network's internal caches.
	fanouts := make([][]circuit.NodeID, n.NumSlots())
	for _, id := range order {
		fanouts[id] = uniqueFanouts(n, id)
	}
	lastWord := bitvec.Words(m) - 1
	tail := bitvec.TailMask(m)
	shards := par.Shards(m, pool.Workers())
	pool.Label("cpm.build", obs.PhaseCPMBuild)
	pool.Do(len(shards), func(_, si int) {
		sh := shards[si]
		d := make([]uint64, bitvec.Words(m))
		var one, zero []uint64
		for idx := len(order) - 1; idx >= 0; idx-- {
			id := order[idx]
			prow := c.p[id]
			for _, nf := range fanouts[id] {
				kind := n.Kind(nf)
				fanins := n.Fanins(nf)
				if cap(one) < len(fanins) {
					one = make([]uint64, len(fanins))
					zero = make([]uint64, len(fanins))
				}
				ob, zb := one[:len(fanins)], zero[:len(fanins)]
				dAny := false
				for w := sh.W0; w < sh.W1; w++ {
					for j, f := range fanins {
						if f == id {
							ob[j], zb[j] = ^uint64(0), 0
						} else {
							fv := vals.Node(f).WordsSlice()[w]
							ob[j], zb[j] = fv, fv
						}
					}
					dw := kind.EvalWord(ob) ^ kind.EvalWord(zb)
					if w == lastWord {
						dw &= tail
					}
					d[w] = dw
					dAny = dAny || dw != 0
				}
				if !dAny {
					continue
				}
				frow := c.p[nf]
				for o := 0; o < numOut; o++ {
					if !frow[o].AnyWords(sh.W0, sh.W1) {
						continue
					}
					fo := frow[o].WordsSlice()
					po := prow[o].WordsSlice()
					for w := sh.W0; w < sh.W1; w++ {
						po[w] |= fo[w] & d[w]
					}
				}
			}
		}
	})
	c.buildTime = time.Since(start)
	statCPMBuilds.Inc()
	statCPMBuildNS.Add(int64(c.buildTime))
	return c
}

// EnsureAnyProp warms the AnyProp cache for the given nodes. AnyProp is
// already safe to fault in from concurrent workers; pre-warming simply
// avoids the duplicated compute of racing fills on hot candidate targets.
func (c *CPM) EnsureAnyProp(ids []circuit.NodeID) {
	for _, id := range ids {
		c.AnyProp(id)
	}
}

// EnsureAEMColumns extracts the per-pattern golden/approximate output words
// for st into the CPM's column cache. The cache is a plain (non-atomic)
// memo keyed by state pointer, so sharded AEM queries require this to be
// called — from a single goroutine, before the worker fan-out — whenever
// the error state changes; DeltaAEMPartial then only reads it.
func (c *CPM) EnsureAEMColumns(st *emetric.State) {
	if c.o > 63 {
		panic("core: EnsureAEMColumns requires <= 63 outputs")
	}
	c.aemColumns(st)
}

// DeltaERPartial computes the word range [w0, w1) of a DeltaER query as
// exact integer counts: inc is the number of newly-wrong patterns in the
// range, dec the number of fully-corrected ones. chg holds the change-mask
// words of the candidate (only [w0, w1) is read; tail bits beyond M must be
// zero). Summing the counts over any word-aligned partition of the pattern
// space and evaluating (inc−dec)/M reproduces DeltaER's result bit for bit:
// both cases of Algorithm 1 are word-local, and the sequential early-exits
// only skip words whose partial is already zero.
//
// Safe to call from concurrent workers (AnyProp faults in atomically).
//
//als:allocfree
func (c *CPM) DeltaERPartial(nx circuit.NodeID, chg []uint64, st *emetric.State, w0, w1 int) (inc, dec int64) {
	if c.restricted {
		panic("core: DeltaERPartial on an output-restricted CPM")
	}
	statPartialER.Inc()
	ap := c.AnyProp(nx).WordsSlice()
	wa := st.WrongAny.WordsSlice()
	row := c.p[nx]
	for w := w0; w < w1; w++ {
		cw := chg[w]
		if cw == 0 {
			continue
		}
		inc += int64(bits.OnesCount64(cw &^ wa[w] & ap[w]))
		dw := cw & wa[w]
		for o := 0; o < c.o && dw != 0; o++ {
			dw &^= row[o].WordsSlice()[w] ^ st.W.Row(o).WordsSlice()[w]
		}
		dec += int64(bits.OnesCount64(dw))
	}
	return inc, dec
}

// DeltaAEMPartial computes the word range [w0, w1) of a DeltaAEM query,
// returning the *unnormalised* magnitude sum over the range's patterns
// (DeltaAEM's result is the total over all words divided by M). The
// per-pattern contributions are integer-valued, so partial sums over a
// word-aligned partition combine exactly — in the fixed shard order — to
// the sequential accumulation for any magnitude below 2^53, which covers
// every bundled benchmark. The reached-output set is gathered shard-
// locally; an output unreachable within the range contributes no flip bit
// for its patterns, so the restriction is result-identical.
//
// EnsureAEMColumns(st) must have been called (from one goroutine) first.
//
//als:allocfree
func (c *CPM) DeltaAEMPartial(nx circuit.NodeID, chg []uint64, st *emetric.State, w0, w1 int) float64 {
	if c.restricted {
		panic("core: DeltaAEMPartial on an output-restricted CPM")
	}
	if c.o > 63 {
		panic("core: DeltaAEMPartial requires <= 63 outputs")
	}
	if c.aemFor != st {
		panic(fmt.Sprintf("core: DeltaAEMPartial for state %p without EnsureAEMColumns", st))
	}
	statPartialAEM.Inc()
	row := c.p[nx]
	// The reached-output gather lives in a fixed-size stack array (c.o is
	// capped at 63 above): the kernel runs per candidate per shard, so a
	// heap slice here would dominate the scoring loop's allocation profile,
	// and per-worker scratch cannot live on the shared CPM.
	var reached [63]aemReach
	nr := 0
	for o := 0; o < c.o; o++ {
		pw := row[o].WordsSlice()
		for w := w0; w < w1; w++ {
			if chg[w]&pw[w] != 0 {
				reached[nr] = aemReach{bit: 1 << uint(o), words: pw}
				nr++
				break
			}
		}
	}
	if nr == 0 {
		return 0
	}
	var total float64
	for w := w0; w < w1; w++ {
		word := chg[w]
		for word != 0 {
			b := word & (-word)
			i := w*bitvec.WordBits + bits.TrailingZeros64(b)
			word ^= b
			var flip uint64
			for _, r := range reached[:nr] {
				if r.words[w]&b != 0 {
					flip |= r.bit
				}
			}
			if flip == 0 {
				continue
			}
			org := c.aemU[i]
			pre := c.aemV[i]
			total += absDiff(pre^flip, org) - absDiff(pre, org)
		}
	}
	return total
}
