package core

import (
	"strings"
	"testing"

	"batchals/internal/circuit"
	"batchals/internal/sim"
)

func TestTestabilityReport(t *testing.T) {
	// o = AND(a, AND(b, AND(c, d))): the deep AND is rarely 1 and fully
	// observable at the single output; the shallow ANDs are masked.
	n := circuit.New("tb")
	a := n.AddInput("a")
	b := n.AddInput("b")
	c := n.AddInput("c")
	d := n.AddInput("d")
	g1 := n.AddGate(circuit.KindAnd, c, d)
	g2 := n.AddGate(circuit.KindAnd, b, g1)
	g3 := n.AddGate(circuit.KindAnd, a, g2)
	n.AddOutput("o", g3)

	p := sim.ExhaustivePatterns(4)
	vals := sim.Simulate(n, p)
	cpm := Build(n, vals)
	rows := TestabilityReport(n, vals, cpm)
	if len(rows) != 3 {
		t.Fatalf("rows=%d want 3", len(rows))
	}
	byNode := map[circuit.NodeID]NodeTestability{}
	for _, r := range rows {
		byNode[r.Node] = r
		if r.Prob1 < 0 || r.Prob1 > 1 || r.Observability < 0 || r.Observability > 1 {
			t.Fatalf("out-of-range measures: %+v", r)
		}
	}
	// Output driver: observability 1, P(1) = 1/16.
	if byNode[g3].Observability != 1 {
		t.Fatalf("output driver observability %v", byNode[g3].Observability)
	}
	if byNode[g3].Prob1 != 1.0/16 {
		t.Fatalf("P1(g3)=%v want 1/16", byNode[g3].Prob1)
	}
	// g1 is observable only when a=b=1: 1/4 of patterns.
	if byNode[g1].Observability != 0.25 {
		t.Fatalf("observability(g1)=%v want 0.25", byNode[g1].Observability)
	}
	// Tree circuit: CPM observability is exact here.
	out := RenderTestability(rows, 2)
	if !strings.Contains(out, "observ") || len(strings.Split(strings.TrimSpace(out), "\n")) != 3 {
		t.Fatalf("render wrong:\n%s", out)
	}
}

func TestTestabilityImpactOrdering(t *testing.T) {
	// A node feeding no masking logic has higher impact than one behind
	// heavy masking with the same signal probability.
	n := circuit.New("imp")
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddGate(circuit.KindXor, a, b) // directly observable
	deep := n.AddGate(circuit.KindXor, a, b)
	blocked := n.AddGate(circuit.KindAnd, deep, n.AddConst(false)) // fully masked
	n.AddOutput("o1", x)
	n.AddOutput("o2", blocked)
	p := sim.ExhaustivePatterns(2)
	vals := sim.Simulate(n, p)
	cpm := Build(n, vals)
	rows := TestabilityReport(n, vals, cpm)
	var xi, di NodeTestability
	for _, r := range rows {
		if r.Node == x {
			xi = r
		}
		if r.Node == deep {
			di = r
		}
	}
	if !(xi.Impact > di.Impact) {
		t.Fatalf("impact ordering wrong: visible %v vs masked %v", xi.Impact, di.Impact)
	}
	if di.Observability != 0 {
		t.Fatalf("masked node observability %v want 0", di.Observability)
	}
}
