// Package sigprob propagates signal probabilities through a network under
// the classic independence assumption (Krishnamurthy–Tollis style): each
// gate output probability is computed from its fanin probabilities as if
// the fanins were statistically independent.
//
// This is the cheap analytical method the paper's Section 4.1 discusses:
// exact on fanout-free circuits, approximate in the presence of
// reconvergent fanout, and restricted to independent inputs — the
// limitations that motivate Monte Carlo estimation. The original SASIMI
// candidate filter also builds on probabilities like these.
package sigprob

import (
	"fmt"

	"batchals/internal/circuit"
)

// Uniform returns a probability vector assigning 0.5 to every input.
func Uniform(n *circuit.Network) []float64 {
	p := make([]float64, n.NumInputs())
	for i := range p {
		p[i] = 0.5
	}
	return p
}

// Propagate returns the estimated probability of each live node being 1,
// indexed by NodeID, for independent input probabilities inputProb (indexed
// by input position).
func Propagate(n *circuit.Network, inputProb []float64) ([]float64, error) {
	if len(inputProb) != n.NumInputs() {
		return nil, fmt.Errorf("sigprob: %d input probabilities for %d inputs",
			len(inputProb), n.NumInputs())
	}
	for i, p := range inputProb {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("sigprob: input %d probability %v out of [0,1]", i, p)
		}
	}
	prob := make([]float64, n.NumSlots())
	for i, in := range n.Inputs() {
		prob[in] = inputProb[i]
	}
	for _, id := range n.TopoOrder() {
		kind := n.Kind(id)
		if kind == circuit.KindInput {
			continue
		}
		fanins := n.Fanins(id)
		switch kind {
		case circuit.KindConst0:
			prob[id] = 0
		case circuit.KindConst1:
			prob[id] = 1
		case circuit.KindBuf:
			prob[id] = prob[fanins[0]]
		case circuit.KindNot:
			prob[id] = 1 - prob[fanins[0]]
		case circuit.KindAnd, circuit.KindNand:
			p := 1.0
			for _, f := range fanins {
				p *= prob[f]
			}
			if kind == circuit.KindNand {
				p = 1 - p
			}
			prob[id] = p
		case circuit.KindOr, circuit.KindNor:
			q := 1.0
			for _, f := range fanins {
				q *= 1 - prob[f]
			}
			if kind == circuit.KindNor {
				prob[id] = q
			} else {
				prob[id] = 1 - q
			}
		case circuit.KindXor, circuit.KindXnor:
			// P(odd parity) folds pairwise: p ⊕ q = p(1-q) + q(1-p).
			p := 0.0
			for _, f := range fanins {
				q := prob[f]
				p = p*(1-q) + q*(1-p)
			}
			if kind == circuit.KindXnor {
				p = 1 - p
			}
			prob[id] = p
		case circuit.KindMux:
			s, d0, d1 := prob[fanins[0]], prob[fanins[1]], prob[fanins[2]]
			prob[id] = (1-s)*d0 + s*d1
		default:
			return nil, fmt.Errorf("sigprob: unsupported kind %v", kind)
		}
	}
	return prob, nil
}

// PairDifference estimates the probability that two signals differ,
// assuming independence between them: P(a)(1-P(b)) + P(b)(1-P(a)). This is
// the crude similarity proxy the original SASIMI selection uses before any
// simulation.
func PairDifference(pa, pb float64) float64 {
	return pa*(1-pb) + pb*(1-pa)
}
