package analyze_test

import (
	"os"
	"strings"
	"testing"

	"batchals/internal/analyze"
	"batchals/internal/benchfmt"
	"batchals/internal/circuit"
)

// TestDeadFFRFixture checks the golden fixture: g1 drives the output and
// fans out only into the dead region {g2, g3}, so it must carry the one
// dead-ffr finding; the dead nodes themselves stay with the unreachable
// and dangling passes.
func TestDeadFFRFixture(t *testing.T) {
	f, err := os.Open("testdata/deadffr.bench")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := benchfmt.Parse(f, "deadffr")
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}

	rep := analyze.Run(n)
	var deadFFR []analyze.Diagnostic
	for _, d := range rep.Diags {
		if d.Pass == "dead-ffr" {
			deadFFR = append(deadFFR, d)
		}
	}
	if len(deadFFR) != 1 {
		t.Fatalf("want exactly 1 dead-ffr finding, got %d: %v", len(deadFFR), rep.Diags)
	}
	d := deadFFR[0]
	if d.Sev != analyze.SevWarning {
		t.Errorf("dead-ffr severity = %v, want warning", d.Sev)
	}
	if d.Node != n.FindByName("g1") {
		t.Errorf("dead-ffr flagged node %s, want g1", n.NameOf(d.Node))
	}
	if !strings.Contains(d.Msg, "g3") {
		t.Errorf("dead-ffr message should name the region root g3, got %q", d.Msg)
	}
	if rep.Errors() != 0 {
		t.Errorf("fixture should have no error-level findings, got %v", rep.Diags)
	}
}

// TestDeadFFRCleanCircuit checks that a fully live circuit (c17) produces
// no dead-ffr findings.
func TestDeadFFRCleanCircuit(t *testing.T) {
	n := parseC17(t)
	rep := analyze.Run(n)
	for _, d := range rep.Diags {
		if d.Pass == "dead-ffr" {
			t.Errorf("c17 should be dead-ffr clean, got %v", d)
		}
	}
}

// TestDeadFFRRequiresAllFanoutsDead checks that a node with one live and
// one dead fanout is not flagged: only nodes whose entire fanout is dead
// mark the frontier.
func TestDeadFFRRequiresAllFanoutsDead(t *testing.T) {
	n := circuit.New("mixed")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(circuit.KindAnd, a, b)
	live := n.AddGate(circuit.KindOr, g1, a) // live consumer of g1
	n.AddGate(circuit.KindXor, g1, b)        // dead consumer of g1
	n.AddOutput("f", live)

	rep := analyze.Run(n)
	for _, d := range rep.Diags {
		if d.Pass == "dead-ffr" {
			t.Errorf("g1 has a live fanout and must not be flagged, got %v", d)
		}
	}
}
