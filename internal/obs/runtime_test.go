package obs

import (
	"runtime"
	"testing"
	"time"
)

func TestRuntimeSamplerPublishesGauges(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, time.Hour) // final sample happens at stop
	stop()
	stop() // idempotent

	snap := reg.Snapshot()
	for _, name := range []string{
		"runtime_goroutines",
		"runtime_gomaxprocs",
		"runtime_sched_latency_p50_s",
		"runtime_sched_latency_p99_s",
		"runtime_gc_pause_p99_s",
		"runtime_gc_cycles_total",
		"runtime_heap_alloc_bytes_total",
	} {
		if _, ok := snap.Gauges[name]; !ok {
			t.Errorf("gauge %q missing after sampler stop", name)
		}
	}
	if g := snap.Gauges["runtime_goroutines"]; g < 1 {
		t.Errorf("runtime_goroutines = %f, want >= 1", g)
	}
	if g := snap.Gauges["runtime_gomaxprocs"]; g != float64(runtime.GOMAXPROCS(0)) {
		t.Errorf("runtime_gomaxprocs = %f, want %d", g, runtime.GOMAXPROCS(0))
	}
	if g := snap.Gauges["runtime_heap_alloc_bytes_total"]; g <= 0 {
		t.Errorf("runtime_heap_alloc_bytes_total = %f, want > 0", g)
	}
}

func TestRuntimeSamplerNilRegistry(t *testing.T) {
	stop := StartRuntimeSampler(nil, 0)
	stop() // must not panic
}

func TestRuntimeSamplerPeriodicSampling(t *testing.T) {
	reg := NewRegistry()
	stop := StartRuntimeSampler(reg, time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if _, ok := reg.Snapshot().Gauges["runtime_goroutines"]; ok {
			return // a tick fired before stop
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Error("no sample published within 2s at 1ms interval")
}
