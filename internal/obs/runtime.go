package obs

import (
	"runtime"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime sampler: publishes Go runtime health (scheduler latency, GC
// pauses, goroutine count) as registry gauges, sampled from the
// runtime/metrics API. These are the denominators the timeline profiler
// needs — a dispatch that looks slow on the span timeline but coincides
// with a GC pause or scheduler backlog is a runtime artefact, not an
// algorithmic serial fraction.

// DefaultRuntimeSampleInterval is the refresh period StartRuntimeSampler
// uses when given a non-positive interval.
const DefaultRuntimeSampleInterval = 250 * time.Millisecond

// runtimeSamples are the runtime/metrics series the sampler reads.
// Histogram-kind samples are reduced to quantile gauges.
var runtimeSamples = []string{
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
	"/gc/pauses:seconds",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
}

// StartRuntimeSampler starts a background goroutine publishing runtime
// gauges into reg every interval:
//
//	runtime_goroutines            live goroutine count
//	runtime_gomaxprocs            GOMAXPROCS (set once)
//	runtime_sched_latency_p50_s   median goroutine scheduling latency
//	runtime_sched_latency_p99_s   99th-percentile scheduling latency
//	runtime_gc_pause_p99_s        99th-percentile stop-the-world pause
//	runtime_gc_cycles_total       completed GC cycles
//	runtime_heap_alloc_bytes_total  cumulative heap allocation
//
// Metrics the running Go version does not expose are skipped (KindBad
// guard), so the sampler is portable across toolchains. The returned stop
// halts the sampler after one final sample; it is idempotent and safe to
// defer. A nil registry returns a no-op stop.
func StartRuntimeSampler(reg *Registry, every time.Duration) (stop func()) {
	if reg == nil {
		return func() {}
	}
	if every <= 0 {
		every = DefaultRuntimeSampleInterval
	}

	samples := make([]metrics.Sample, len(runtimeSamples))
	for i, name := range runtimeSamples {
		samples[i].Name = name
	}

	goroutinesG := reg.Gauge("runtime_goroutines")
	schedP50G := reg.Gauge("runtime_sched_latency_p50_s")
	schedP99G := reg.Gauge("runtime_sched_latency_p99_s")
	gcPauseP99G := reg.Gauge("runtime_gc_pause_p99_s")
	gcCyclesG := reg.Gauge("runtime_gc_cycles_total")
	heapAllocG := reg.Gauge("runtime_heap_alloc_bytes_total")
	reg.Gauge("runtime_gomaxprocs").Set(float64(runtime.GOMAXPROCS(0)))

	sample := func() {
		metrics.Read(samples)
		for i := range samples {
			s := &samples[i]
			if s.Value.Kind() == metrics.KindBad {
				continue // series not exposed by this Go version
			}
			switch s.Name {
			case "/sched/goroutines:goroutines":
				goroutinesG.Set(float64(s.Value.Uint64()))
			case "/sched/latencies:seconds":
				h := s.Value.Float64Histogram()
				schedP50G.Set(histQuantile(h, 0.50))
				schedP99G.Set(histQuantile(h, 0.99))
			case "/gc/pauses:seconds":
				gcPauseP99G.Set(histQuantile(s.Value.Float64Histogram(), 0.99))
			case "/gc/cycles/total:gc-cycles":
				gcCyclesG.Set(float64(s.Value.Uint64()))
			case "/gc/heap/allocs:bytes":
				heapAllocG.Set(float64(s.Value.Uint64()))
			}
		}
	}

	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		tick := time.NewTicker(every)
		defer tick.Stop()
		for {
			select {
			case <-done:
				sample()
				return
			case <-tick.C:
				sample()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-finished
		})
	}
}

// histQuantile extracts quantile q from a runtime/metrics cumulative-count
// histogram, returning the upper bound of the bucket containing it.
// Runtime histograms may have -Inf/+Inf edge buckets; those collapse to
// the nearest finite bound (0 when the histogram is all-infinite or
// empty).
func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > rank {
			// Bucket i spans (Buckets[i], Buckets[i+1]].
			ub := h.Buckets[i+1]
			if isInf(ub) {
				ub = h.Buckets[i] // +Inf bucket: report the finite lower bound
			}
			if isInf(ub) || ub < 0 {
				return 0
			}
			return ub
		}
	}
	return 0
}

// isInf avoids importing math for the two infinity checks.
func isInf(f float64) bool { return f > 1e308 || f < -1e308 }
