//go:build !race

package batchals

// raceEnabled reports whether the race detector is compiled in; the
// timeline overhead pin skips its timing half under -race, where the
// detector's instrumentation dwarfs the recorder's cost.
const raceEnabled = false
