// Package bitvec provides packed bit vectors and bit matrices used by the
// bit-parallel logic simulator and the change propagation matrix (CPM).
//
// A Vec stores M bits in ceil(M/64) uint64 words. All bulk operations work
// whole words at a time, which is what gives the simulator and the batch
// error estimator their 64x pattern parallelism. Bits beyond the logical
// length are kept zero by every operation that could otherwise set them, so
// Count and iteration never see garbage tail bits.
package bitvec

import (
	"fmt"
	"math/bits"
	"strings"
)

// WordBits is the number of bits stored per machine word.
const WordBits = 64

// Vec is a packed vector of n bits. The zero value is an empty vector.
type Vec struct {
	n     int
	words []uint64
}

// New returns a zeroed vector of n bits.
func New(n int) *Vec {
	if n < 0 {
		panic("bitvec: negative length")
	}
	return &Vec{n: n, words: make([]uint64, Words(n))}
}

// Words returns the number of uint64 words needed to hold n bits.
func Words(n int) int {
	return (n + WordBits - 1) / WordBits
}

// TailMask returns the mask of valid bits in the final word of an n-bit
// vector: all ones when n is a multiple of WordBits, otherwise the low
// n%WordBits bits. Shard-parallel code uses it to keep tail bits zero when
// writing the last word through a raw WordsSlice.
func TailMask(n int) uint64 {
	if r := n % WordBits; r != 0 {
		return (uint64(1) << uint(r)) - 1
	}
	return ^uint64(0)
}

// AnyWords reports whether any bit is set in words [w0, w1) of the vector.
// It is the shard-local variant of Any used by the parallel CPM builder,
// whose workers must never read words owned by other shards.
func (v *Vec) AnyWords(w0, w1 int) bool {
	for _, w := range v.words[w0:w1] {
		if w != 0 {
			return true
		}
	}
	return false
}

// FromWords builds a vector of n bits backed by a copy of the given words.
// Tail bits beyond n are cleared.
func FromWords(n int, words []uint64) *Vec {
	if len(words) < Words(n) {
		panic("bitvec: too few words")
	}
	v := &Vec{n: n, words: append([]uint64(nil), words[:Words(n)]...)}
	v.maskTail()
	return v
}

// Len returns the number of bits in the vector.
func (v *Vec) Len() int { return v.n }

// WordsSlice exposes the backing words. The caller must not set bits beyond
// Len; use MaskTail after raw word writes.
func (v *Vec) WordsSlice() []uint64 { return v.words }

// maskTail clears bits at positions >= n in the last word.
func (v *Vec) maskTail() {
	if v.n%WordBits != 0 && len(v.words) > 0 {
		v.words[len(v.words)-1] &= (uint64(1) << uint(v.n%WordBits)) - 1
	}
}

// MaskTail clears any bits beyond Len in the final word. It must be called
// after external code writes whole words via WordsSlice.
func (v *Vec) MaskTail() { v.maskTail() }

// Get reports whether bit i is set.
func (v *Vec) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Get(%d) out of range [0,%d)", i, v.n))
	}
	return v.words[i/WordBits]>>(uint(i)%WordBits)&1 == 1
}

// Set sets bit i to b.
func (v *Vec) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Set(%d) out of range [0,%d)", i, v.n))
	}
	if b {
		v.words[i/WordBits] |= 1 << (uint(i) % WordBits)
	} else {
		v.words[i/WordBits] &^= 1 << (uint(i) % WordBits)
	}
}

// Flip inverts bit i.
func (v *Vec) Flip(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bitvec: Flip(%d) out of range [0,%d)", i, v.n))
	}
	v.words[i/WordBits] ^= 1 << (uint(i) % WordBits)
}

// Clone returns a deep copy of v.
func (v *Vec) Clone() *Vec {
	return &Vec{n: v.n, words: append([]uint64(nil), v.words...)}
}

// CopyFrom copies the contents of o into v. Lengths must match.
func (v *Vec) CopyFrom(o *Vec) {
	v.checkSameLen(o)
	copy(v.words, o.words)
}

// Zero clears every bit.
func (v *Vec) Zero() {
	for i := range v.words {
		v.words[i] = 0
	}
}

// Fill sets every bit to one.
func (v *Vec) Fill() {
	for i := range v.words {
		v.words[i] = ^uint64(0)
	}
	v.maskTail()
}

func (v *Vec) checkSameLen(o *Vec) {
	if v.n != o.n {
		panic(fmt.Sprintf("bitvec: length mismatch %d != %d", v.n, o.n))
	}
}

// And sets v = a AND b and returns v. v may alias a or b.
func (v *Vec) And(a, b *Vec) *Vec {
	a.checkSameLen(b)
	v.checkSameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] & b.words[i]
	}
	return v
}

// Or sets v = a OR b and returns v. v may alias a or b.
func (v *Vec) Or(a, b *Vec) *Vec {
	a.checkSameLen(b)
	v.checkSameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] | b.words[i]
	}
	return v
}

// Xor sets v = a XOR b and returns v. v may alias a or b.
func (v *Vec) Xor(a, b *Vec) *Vec {
	a.checkSameLen(b)
	v.checkSameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] ^ b.words[i]
	}
	return v
}

// AndNot sets v = a AND NOT b and returns v. v may alias a or b.
func (v *Vec) AndNot(a, b *Vec) *Vec {
	a.checkSameLen(b)
	v.checkSameLen(a)
	for i := range v.words {
		v.words[i] = a.words[i] &^ b.words[i]
	}
	return v
}

// Not sets v = NOT a (within the logical length) and returns v.
func (v *Vec) Not(a *Vec) *Vec {
	v.checkSameLen(a)
	for i := range v.words {
		v.words[i] = ^a.words[i]
	}
	v.maskTail()
	return v
}

// Count returns the number of set bits.
func (v *Vec) Count() int {
	c := 0
	for _, w := range v.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (v *Vec) Any() bool {
	for _, w := range v.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Equal reports whether v and o hold identical bits. Vectors of different
// lengths are never equal.
func (v *Vec) Equal(o *Vec) bool {
	if v.n != o.n {
		return false
	}
	for i, w := range v.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// ForEachSet calls fn for each set bit index in ascending order. If fn
// returns false, iteration stops early.
func (v *Vec) ForEachSet(fn func(i int) bool) {
	for wi, w := range v.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(wi*WordBits + b) {
				return
			}
			w &= w - 1
		}
	}
}

// NextSet returns the index of the first set bit at or after i, or -1 if
// there is none.
func (v *Vec) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= v.n {
		return -1
	}
	wi := i / WordBits
	w := v.words[wi] >> (uint(i) % WordBits)
	if w != 0 {
		return i + bits.TrailingZeros64(w)
	}
	for wi++; wi < len(v.words); wi++ {
		if v.words[wi] != 0 {
			return wi*WordBits + bits.TrailingZeros64(v.words[wi])
		}
	}
	return -1
}

// String renders the vector as a 0/1 string, bit 0 first. Long vectors are
// truncated with an ellipsis; it is intended for debugging and test output.
func (v *Vec) String() string {
	const max = 128
	var sb strings.Builder
	n := v.n
	trunc := false
	if n > max {
		n, trunc = max, true
	}
	for i := 0; i < n; i++ {
		if v.Get(i) {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	if trunc {
		fmt.Fprintf(&sb, "...(+%d)", v.n-max)
	}
	return sb.String()
}
