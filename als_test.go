package batchals

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestFacadeQuickPath(t *testing.T) {
	golden, err := Benchmark("mul4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approximate(golden, Options{
		Metric:      ErrorRate,
		Threshold:   0.03,
		NumPatterns: 1500,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 0.03+1e-9 {
		t.Fatalf("error %v over budget", res.FinalError)
	}
	if res.FinalArea > res.OriginalArea {
		t.Fatal("area grew")
	}
	rep := MeasureError(golden, res.Approx, 4000, 99)
	if rep.ErrorRate > 0.06 {
		t.Fatalf("independent measurement %v too high", rep.ErrorRate)
	}
	exact := MeasureErrorExact(golden, res.Approx)
	if exact.ErrorRate > 0.06 {
		t.Fatalf("exact %v too high", exact.ErrorRate)
	}
}

func TestFacadeBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) == 0 {
		t.Fatal("no benchmarks")
	}
	if _, err := Benchmark("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeAreaDelay(t *testing.T) {
	n, _ := Benchmark("rca8")
	if Area(n) <= 0 || Delay(n) <= 0 {
		t.Fatal("area/delay not positive")
	}
}

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n, _ := Benchmark("cmp8")
	for _, ext := range []string{".bench", ".blif"} {
		path := filepath.Join(dir, "cmp8"+ext)
		if err := Save(path, n); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if rep := MeasureErrorExact(n, back); rep.ErrorRate != 0 {
			t.Fatalf("%s: round trip changed behaviour", ext)
		}
	}
}

func TestFacadeUnknownFormat(t *testing.T) {
	n, _ := Benchmark("rca8")
	var buf bytes.Buffer
	if err := WriteTo(&buf, ".v", n); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Read(&buf, ".v", "x"); err == nil {
		t.Fatal("unknown format accepted on read")
	}
}

func TestFacadeAEM(t *testing.T) {
	golden, _ := Benchmark("mul4")
	res, err := Approximate(golden, Options{
		Metric:      AvgErrorMagnitude,
		Threshold:   3,
		NumPatterns: 1500,
		Seed:        2,
		KeepTrace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 3+1e-9 {
		t.Fatalf("AEM %v over budget", res.FinalError)
	}
	if len(res.Iterations) != res.NumIterations {
		t.Fatal("trace length mismatch")
	}
}
