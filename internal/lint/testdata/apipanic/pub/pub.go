// Package pub stands in for the public facade: not main, not internal.
package pub

import "fmt"

// Explode panics on a public API path.
func Explode() {
	panic("boom") // want "public API paths must return errors"
}

// Safe returns the error instead.
func Safe() error {
	return fmt.Errorf("boom")
}
