package batchals

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"
)

func TestFacadeQuickPath(t *testing.T) {
	golden, err := Benchmark("mul4")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Approximate(golden, Options{
		Metric:      ErrorRate,
		Threshold:   0.03,
		NumPatterns: 1500,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 0.03+1e-9 {
		t.Fatalf("error %v over budget", res.FinalError)
	}
	if res.FinalArea > res.OriginalArea {
		t.Fatal("area grew")
	}
	rep := MeasureError(golden, res.Approx, 4000, 99)
	if rep.ErrorRate > 0.06 {
		t.Fatalf("independent measurement %v too high", rep.ErrorRate)
	}
	exact := MeasureErrorExact(golden, res.Approx)
	if exact.ErrorRate > 0.06 {
		t.Fatalf("exact %v too high", exact.ErrorRate)
	}
}

func TestFacadeBenchmarkNames(t *testing.T) {
	names := BenchmarkNames()
	if len(names) == 0 {
		t.Fatal("no benchmarks")
	}
	if _, err := Benchmark("nonesuch"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestFacadeAreaDelay(t *testing.T) {
	n, _ := Benchmark("rca8")
	if Area(n) <= 0 || Delay(n) <= 0 {
		t.Fatal("area/delay not positive")
	}
}

func TestFacadeSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	n, _ := Benchmark("cmp8")
	for _, ext := range []string{".bench", ".blif"} {
		path := filepath.Join(dir, "cmp8"+ext)
		if err := Save(path, n); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		back, err := Load(path)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if rep := MeasureErrorExact(n, back); rep.ErrorRate != 0 {
			t.Fatalf("%s: round trip changed behaviour", ext)
		}
	}
}

func TestFacadeUnknownFormat(t *testing.T) {
	n, _ := Benchmark("rca8")
	var buf bytes.Buffer
	if err := WriteTo(&buf, ".v", n); err == nil {
		t.Fatal("unknown format accepted")
	}
	if _, err := Read(&buf, ".v", "x"); err == nil {
		t.Fatal("unknown format accepted on read")
	}
}

func TestFacadeAEM(t *testing.T) {
	golden, _ := Benchmark("mul4")
	res, err := Approximate(golden, Options{
		Metric:      AvgErrorMagnitude,
		Threshold:   3,
		NumPatterns: 1500,
		Seed:        2,
		KeepTrace:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalError > 3+1e-9 {
		t.Fatalf("AEM %v over budget", res.FinalError)
	}
	if len(res.Iterations) != res.NumIterations {
		t.Fatal("trace length mismatch")
	}
}

func TestFacadeSentinelErrors(t *testing.T) {
	if _, err := Benchmark("not-a-benchmark"); !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("got %v, want ErrUnknownBenchmark", err)
	}
	golden, err := Benchmark("rca8")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Approximate(golden, Options{Threshold: -1}); !errors.Is(err, ErrBadThreshold) {
		t.Fatalf("got %v, want ErrBadThreshold", err)
	}
	if _, err := Approximate(golden, Options{Threshold: 0.1, NumPatterns: -5}); !errors.Is(err, ErrNoPatterns) {
		t.Fatalf("got %v, want ErrNoPatterns", err)
	}
}

func TestFacadeApproximateContext(t *testing.T) {
	golden, err := Benchmark("rca8")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ApproximateContext(ctx, golden, Options{Threshold: 0.05, NumPatterns: 500})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if res == nil || res.NumIterations != 0 {
		t.Fatal("cancelled run must return the empty partial result")
	}
	// An un-cancelled context behaves exactly like Approximate.
	got, err := ApproximateContext(context.Background(), golden, Options{
		Threshold: 0.05, NumPatterns: 1000, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Approximate(golden, Options{Threshold: 0.05, NumPatterns: 1000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.FinalArea != want.FinalArea || got.NumIterations != want.NumIterations {
		t.Fatal("ApproximateContext diverges from Approximate")
	}
}

func TestFacadeIncrementalModes(t *testing.T) {
	golden, err := Benchmark("mul4")
	if err != nil {
		t.Fatal(err)
	}
	base := Options{Metric: ErrorRate, Threshold: 0.03, NumPatterns: 1500, Seed: 1, KeepTrace: true}
	on := base
	on.Incremental = IncrementalOn
	off := base
	off.Incremental = IncrementalOff
	a, err := Approximate(golden, on)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Approximate(golden, off)
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalArea != b.FinalArea || a.FinalError != b.FinalError || a.NumIterations != b.NumIterations {
		t.Fatalf("incremental (%v/%v/%d) and full rebuild (%v/%v/%d) diverge",
			a.FinalArea, a.FinalError, a.NumIterations, b.FinalArea, b.FinalError, b.NumIterations)
	}
	if a.Approx.Dump() != b.Approx.Dump() {
		t.Fatal("incremental and full rebuild produced different circuits")
	}
}
