package core

import (
	"math"
	"math/rand"
	"testing"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

// actualChangedOutputs computes ground truth: the outputs that really flip
// when node nx's value vector is complemented on the mask, via cone
// resimulation. Returns one M-bit vector per output marking flipped
// patterns.
func actualChangedOutputs(n *circuit.Network, vals *sim.Values, nx circuit.NodeID, mask *bitvec.Vec) []*bitvec.Vec {
	before := sim.OutputMatrix(n, vals)
	snap := sim.SnapshotCone(n, vals, nx)
	nv := vals.Node(nx).Clone()
	nv.Xor(nv, mask)
	vals.Node(nx).CopyFrom(nv)
	sim.ResimulateCone(n, vals, nx)
	after := sim.OutputMatrix(n, vals)
	snap.Restore(vals)
	out := make([]*bitvec.Vec, n.NumOutputs())
	for o := range out {
		out[o] = bitvec.New(vals.M).Xor(before.Row(o), after.Row(o))
	}
	return out
}

// randomTree builds a random forest network where every node has at most
// one fanout, so the CPM is provably exact on it.
func randomTree(t testing.TB, r *rand.Rand, nin, ngates int) *circuit.Network {
	t.Helper()
	n := circuit.New("tree")
	avail := make([]circuit.NodeID, 0, nin+ngates)
	for i := 0; i < nin; i++ {
		avail = append(avail, n.AddInput(""))
	}
	kinds := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindNand,
		circuit.KindNor, circuit.KindXor, circuit.KindXnor, circuit.KindNot}
	take := func() circuit.NodeID {
		i := r.Intn(len(avail))
		id := avail[i]
		avail = append(avail[:i], avail[i+1:]...)
		return id
	}
	for g := 0; g < ngates && len(avail) >= 2; g++ {
		k := kinds[r.Intn(len(kinds))]
		var id circuit.NodeID
		if k == circuit.KindNot {
			id = n.AddGate(k, take())
		} else {
			id = n.AddGate(k, take(), take())
		}
		avail = append(avail, id)
	}
	for _, id := range avail {
		n.AddOutput("", id)
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func randomDAG(t testing.TB, r *rand.Rand, nin, ngates int) *circuit.Network {
	t.Helper()
	n := circuit.New("dag")
	pool := make([]circuit.NodeID, 0, nin+ngates)
	for i := 0; i < nin; i++ {
		pool = append(pool, n.AddInput(""))
	}
	kinds := []circuit.Kind{circuit.KindAnd, circuit.KindOr, circuit.KindNand,
		circuit.KindNor, circuit.KindXor, circuit.KindXnor, circuit.KindNot}
	for i := 0; i < ngates; i++ {
		k := kinds[r.Intn(len(kinds))]
		var id circuit.NodeID
		if k == circuit.KindNot {
			id = n.AddGate(k, pool[r.Intn(len(pool))])
		} else {
			id = n.AddGate(k, pool[r.Intn(len(pool))], pool[r.Intn(len(pool))])
		}
		pool = append(pool, id)
	}
	for _, id := range pool {
		if len(n.Fanouts(id)) == 0 {
			n.AddOutput("", id)
		}
	}
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	return n
}

func gatesOf(n *circuit.Network) []circuit.NodeID {
	var gs []circuit.NodeID
	for _, id := range n.LiveNodes() {
		if n.Kind(id).IsGate() {
			gs = append(gs, id)
		}
	}
	return gs
}

func TestBoolDiffANDExample(t *testing.T) {
	// Example 4.2 of the paper: N1 = I1 AND I2; dN1/dI1 = I2.
	n := circuit.New("ex")
	i1 := n.AddInput("I1")
	i2 := n.AddInput("I2")
	n1 := n.AddGate(circuit.KindAnd, i1, i2)
	n.AddOutput("O", n1)
	p := sim.ExhaustivePatterns(2)
	vals := sim.Simulate(n, p)
	d := bitvec.New(4)
	boolDiff(n, vals, i1, n1, d)
	if !d.Equal(vals.Node(i2)) {
		t.Fatalf("dN1/dI1 = %v, want value of I2 = %v", d, vals.Node(i2))
	}
	boolDiff(n, vals, i2, n1, d)
	if !d.Equal(vals.Node(i1)) {
		t.Fatalf("dN1/dI2 wrong")
	}
}

func TestBoolDiffXORAlwaysOne(t *testing.T) {
	n := circuit.New("x")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(circuit.KindXor, a, b)
	n.AddOutput("o", g)
	p := sim.RandomPatterns(2, 100, 1)
	vals := sim.Simulate(n, p)
	d := bitvec.New(100)
	boolDiff(n, vals, a, g, d)
	if d.Count() != 100 {
		t.Fatal("XOR Boolean difference must be constant 1")
	}
}

func TestBoolDiffMultiPin(t *testing.T) {
	// g = AND(x, x): flipping x always flips g (g == x).
	n := circuit.New("mp")
	x := n.AddInput("x")
	g := n.AddGate(circuit.KindAnd, x, x)
	n.AddOutput("o", g)
	p := sim.ExhaustivePatterns(1)
	vals := sim.Simulate(n, p)
	d := bitvec.New(2)
	boolDiff(n, vals, x, g, d)
	if d.Count() != 2 {
		t.Fatalf("d(AND(x,x))/dx should be 1 everywhere, got %v", d)
	}
	// h = XOR(x, x) is constant 0; flipping x never changes it.
	n2 := circuit.New("mp2")
	x2 := n2.AddInput("x")
	h := n2.AddGate(circuit.KindXor, x2, x2)
	n2.AddOutput("o", h)
	v2 := sim.Simulate(n2, sim.ExhaustivePatterns(1))
	d2 := bitvec.New(2)
	boolDiff(n2, v2, x2, h, d2)
	if d2.Any() {
		t.Fatalf("d(XOR(x,x))/dx should be 0, got %v", d2)
	}
}

func TestCPMOutputDriverBaseCase(t *testing.T) {
	n := circuit.New("base")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(circuit.KindAnd, a, b)
	n.AddOutput("o0", g)
	n.AddOutput("o1", g) // same driver, two outputs
	p := sim.RandomPatterns(2, 70, 2)
	vals := sim.Simulate(n, p)
	c := Build(n, vals)
	for o := 0; o < 2; o++ {
		if c.Prop(g, o).Count() != 70 {
			t.Fatalf("output driver must propagate to output %d always", o)
		}
	}
}

func TestCPMExactOnTrees(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	for trial := 0; trial < 30; trial++ {
		n := randomTree(t, r, 8, 20)
		p := sim.RandomPatterns(n.NumInputs(), 256, int64(trial))
		vals := sim.Simulate(n, p)
		c := Build(n, vals)
		full := bitvec.New(256)
		full.Fill()
		for _, nx := range n.LiveNodes() {
			want := actualChangedOutputs(n, vals, nx, full)
			for o := 0; o < n.NumOutputs(); o++ {
				if !c.Prop(nx, o).Equal(want[o]) {
					t.Fatalf("trial %d: CPM not exact on tree at node %d output %d", trial, nx, o)
				}
			}
		}
	}
}

func TestCPMReconvergenceKnownFailure(t *testing.T) {
	// O = XOR(BUF(x), NOT(x)) is constant 1: flipping x never changes O.
	// The CPM, evaluating each Boolean difference at unperturbed side
	// values, predicts propagation — the documented limitation (§4.3).
	n := circuit.New("reconv")
	x := n.AddInput("x")
	n1 := n.AddGate(circuit.KindBuf, x)
	n2 := n.AddGate(circuit.KindNot, x)
	o := n.AddGate(circuit.KindXor, n1, n2)
	n.AddOutput("O", o)
	p := sim.ExhaustivePatterns(1)
	vals := sim.Simulate(n, p)
	c := Build(n, vals)
	full := bitvec.New(2)
	full.Fill()
	truth := actualChangedOutputs(n, vals, x, full)
	if truth[0].Any() {
		t.Fatal("sanity: flipping x must not change constant output")
	}
	if !c.Prop(x, 0).Any() {
		t.Fatal("expected the documented reconvergence over-approximation; CPM returned exact result")
	}
}

func TestCPMCloseOnRandomDAGs(t *testing.T) {
	// On general DAGs the CPM is an approximation; check per-node
	// prediction accuracy stays high in aggregate.
	r := rand.New(rand.NewSource(77))
	totalBits, wrongBits := 0, 0
	for trial := 0; trial < 10; trial++ {
		n := randomDAG(t, r, 8, 60)
		p := sim.RandomPatterns(8, 256, int64(trial))
		vals := sim.Simulate(n, p)
		c := Build(n, vals)
		full := bitvec.New(256)
		full.Fill()
		for _, nx := range gatesOf(n) {
			want := actualChangedOutputs(n, vals, nx, full)
			for o := 0; o < n.NumOutputs(); o++ {
				diff := bitvec.New(256).Xor(c.Prop(nx, o), want[o])
				wrongBits += diff.Count()
				totalBits += 256
			}
		}
	}
	frac := float64(wrongBits) / float64(totalBits)
	if frac > 0.10 {
		t.Fatalf("CPM disagrees with ground truth on %.1f%% of entries; expected high accuracy", frac*100)
	}
}

// buildApproxPair returns a golden DAG, an identical working copy, its
// simulation and error state (zero error initially).
func buildApproxPair(t testing.TB, r *rand.Rand, nin, ngates, m int, seed int64) (golden, approx *circuit.Network, p *sim.Patterns, vals *sim.Values, st *emetric.State) {
	golden = randomDAG(t, r, nin, ngates)
	approx = golden.Clone()
	p = sim.RandomPatterns(nin, m, seed)
	gv := sim.Simulate(golden, p)
	vals = sim.Simulate(approx, p)
	st = emetric.NewState(sim.OutputMatrix(golden, gv), sim.OutputMatrix(approx, vals))
	return
}

func TestDeltaERMatchesExactOnTrees(t *testing.T) {
	r := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		golden := randomTree(t, r, 8, 18)
		approx := golden.Clone()
		p := sim.RandomPatterns(8, 512, int64(trial))
		gv := sim.Simulate(golden, p)
		vals := sim.Simulate(approx, p)
		st := emetric.NewState(sim.OutputMatrix(golden, gv), sim.OutputMatrix(approx, vals))
		c := Build(approx, vals)
		gates := gatesOf(approx)
		for k := 0; k < 10; k++ {
			nx := gates[r.Intn(len(gates))]
			// Candidate AT: force nx to a random flip mask.
			change := bitvec.New(512)
			for i := 0; i < 512; i++ {
				if r.Intn(4) == 0 {
					change.Set(i, true)
				}
			}
			newVal := vals.Node(nx).Clone()
			newVal.Xor(newVal, change)
			got := c.DeltaER(nx, change, st)
			want := ExactDelta(approx, vals, nx, newVal, st, MetricER)
			if math.Abs(got-want) > 1e-12 {
				t.Fatalf("trial %d node %d: DeltaER=%v exact=%v", trial, nx, got, want)
			}
		}
	}
}

func TestDeltaERNegativeWhenFixing(t *testing.T) {
	// Corrupt the approximate circuit at one node, then the AT that undoes
	// the corruption must report a negative (improving) ΔER equal to -ER.
	n := circuit.New("fix")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(circuit.KindAnd, a, b)
	n.AddOutput("o", g)
	approx := circuit.New("fix2")
	a2 := approx.AddInput("a")
	b2 := approx.AddInput("b")
	g2 := approx.AddGate(circuit.KindOr, a2, b2) // wrong gate
	approx.AddOutput("o", g2)

	p := sim.ExhaustivePatterns(2)
	gv := sim.Simulate(n, p)
	av := sim.Simulate(approx, p)
	st := emetric.NewState(sim.OutputMatrix(n, gv), sim.OutputMatrix(approx, av))
	if st.ErrorRate() != 0.5 {
		t.Fatalf("sanity: OR vs AND differ on 2 of 4 patterns, ER=%v", st.ErrorRate())
	}
	c := Build(approx, av)
	// AT: change g2 back to AND; change mask = patterns where OR != AND.
	change := bitvec.New(4).Xor(av.Node(g2), gv.Node(g))
	got := c.DeltaER(g2, change, st)
	if math.Abs(got-(-0.5)) > 1e-12 {
		t.Fatalf("ΔER=%v want -0.5", got)
	}
}

func TestDeltaERCloseOnDAGs(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	var sumAbs, worst float64
	count := 0
	for trial := 0; trial < 12; trial++ {
		_, approx, _, vals, st := buildApproxPair(t, r, 9, 70, 1024, int64(trial))
		c := Build(approx, vals)
		gates := gatesOf(approx)
		for k := 0; k < 12; k++ {
			nx := gates[r.Intn(len(gates))]
			ns := gates[r.Intn(len(gates))]
			if nx == ns || approx.TransitiveFanoutCone(nx)[ns] {
				continue
			}
			// Substitution-style AT: nx takes ns's value vector.
			change := bitvec.New(1024).Xor(vals.Node(nx), vals.Node(ns))
			got := c.DeltaER(nx, change, st)
			want := ExactDelta(approx, vals, nx, vals.Node(ns), st, MetricER)
			d := math.Abs(got - want)
			sumAbs += d
			if d > worst {
				worst = d
			}
			count++
		}
	}
	if count == 0 {
		t.Fatal("no candidates evaluated")
	}
	if avg := sumAbs / float64(count); avg > 0.02 || worst > 0.25 {
		t.Fatalf("ΔER estimate too loose: mean |err| %.4f worst %.4f over %d ATs", avg, worst, count)
	}
}

func TestDeltaAEMMatchesExactOnTrees(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	for trial := 0; trial < 20; trial++ {
		golden := randomTree(t, r, 8, 16)
		approx := golden.Clone()
		p := sim.RandomPatterns(8, 512, int64(trial)+50)
		gv := sim.Simulate(golden, p)
		vals := sim.Simulate(approx, p)
		st := emetric.NewState(sim.OutputMatrix(golden, gv), sim.OutputMatrix(approx, vals))
		c := Build(approx, vals)
		gates := gatesOf(approx)
		for k := 0; k < 8; k++ {
			nx := gates[r.Intn(len(gates))]
			change := bitvec.New(512)
			for i := 0; i < 512; i++ {
				if r.Intn(5) == 0 {
					change.Set(i, true)
				}
			}
			newVal := vals.Node(nx).Clone()
			newVal.Xor(newVal, change)
			got := c.DeltaAEM(nx, change, st)
			want := ExactDelta(approx, vals, nx, newVal, st, MetricAEM)
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("trial %d node %d: ΔAEM=%v exact=%v", trial, nx, got, want)
			}
		}
	}
}

func TestDeltaZeroForEmptyChange(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	_, approx, _, vals, st := buildApproxPair(t, r, 6, 30, 128, 1)
	c := Build(approx, vals)
	nx := gatesOf(approx)[0]
	empty := bitvec.New(128)
	if c.DeltaER(nx, empty, st) != 0 || c.DeltaAEM(nx, empty, st) != 0 {
		t.Fatal("empty change mask must give zero delta")
	}
}

func TestObservabilityBounds(t *testing.T) {
	r := rand.New(rand.NewSource(19))
	n := randomDAG(t, r, 7, 50)
	p := sim.RandomPatterns(7, 256, 4)
	vals := sim.Simulate(n, p)
	c := Build(n, vals)
	for _, id := range n.LiveNodes() {
		ob := c.Observability(id)
		if ob < 0 || ob > 1 {
			t.Fatalf("observability %v out of range", ob)
		}
	}
	// An output driver is fully observable.
	drv := n.Outputs()[0].Node
	if c.Observability(drv) != 1 {
		t.Fatal("output driver must have observability 1")
	}
}

func TestChangedOutputsMask(t *testing.T) {
	n := circuit.New("m")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g := n.AddGate(circuit.KindAnd, a, b)
	inv := n.AddGate(circuit.KindNot, g)
	n.AddOutput("o0", g)
	n.AddOutput("o1", inv)
	p := sim.ExhaustivePatterns(2)
	vals := sim.Simulate(n, p)
	c := Build(n, vals)
	for i := 0; i < 4; i++ {
		// Flipping g always flips both outputs.
		if c.ChangedOutputs(g, i) != 0b11 {
			t.Fatalf("pattern %d: mask %b want 11", i, c.ChangedOutputs(g, i))
		}
	}
}

func TestMetricString(t *testing.T) {
	if MetricER.String() != "ER" || MetricAEM.String() != "AEM" {
		t.Fatal("metric names wrong")
	}
}

func TestBuildForOutputsMatchesFull(t *testing.T) {
	r := rand.New(rand.NewSource(71))
	n := randomDAG(t, r, 7, 60)
	p := sim.RandomPatterns(7, 256, 2)
	vals := sim.Simulate(n, p)
	full := Build(n, vals)
	// Restrict to a scattered subset of outputs.
	var subset []int
	for o := 0; o < n.NumOutputs(); o += 2 {
		subset = append(subset, o)
	}
	part := BuildForOutputs(n, vals, subset)
	for _, id := range n.LiveNodes() {
		for slot, o := range subset {
			if !part.Prop(id, slot).Equal(full.Prop(id, o)) {
				t.Fatalf("node %d output %d: restricted CPM differs", id, o)
			}
		}
	}
}

func TestBuildForOutputsRejectsErrorQueries(t *testing.T) {
	r := rand.New(rand.NewSource(72))
	_, approx, _, vals, st := buildApproxPair(t, r, 5, 20, 64, 1)
	part := BuildForOutputs(approx, vals, []int{0})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	part.DeltaER(gatesOf(approx)[0], bitvec.New(64), st)
}

func TestBuildForOutputsRangeCheck(t *testing.T) {
	r := rand.New(rand.NewSource(73))
	n := randomDAG(t, r, 5, 20)
	p := sim.RandomPatterns(5, 64, 1)
	vals := sim.Simulate(n, p)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	BuildForOutputs(n, vals, []int{n.NumOutputs()})
}
