// Command errstat measures the statistical error between a golden circuit
// and an approximate version of it.
//
// Usage:
//
//	errstat -golden rca32.bench -approx rca32_approx.bench -m 100000
//	errstat -golden mul8 -approx approx.blif -exact
//
// Circuits may be benchmark names or .bench/.blif files. With -exact the
// error is computed by exhaustive enumeration (<= 26 inputs); otherwise by
// Monte Carlo simulation with -m patterns.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"batchals"
)

func main() {
	var (
		goldenFlag = flag.String("golden", "", "golden circuit (benchmark name or file)")
		approxFlag = flag.String("approx", "", "approximate circuit (benchmark name or file)")
		m          = flag.Int("m", 100000, "Monte Carlo pattern count")
		seed       = flag.Int64("seed", 0, "random seed")
		exact      = flag.Bool("exact", false, "exhaustive enumeration instead of Monte Carlo")
	)
	flag.Parse()
	if *goldenFlag == "" || *approxFlag == "" {
		fmt.Fprintln(os.Stderr, "errstat: -golden and -approx are required")
		flag.Usage()
		os.Exit(2)
	}
	golden, err := load(*goldenFlag)
	if err != nil {
		fatal(err)
	}
	approx, err := load(*approxFlag)
	if err != nil {
		fatal(err)
	}

	var rep batchals.ErrorReport
	if *exact {
		rep = batchals.MeasureErrorExact(golden, approx)
	} else {
		rep = batchals.MeasureError(golden, approx, *m, *seed)
	}
	kind := "monte-carlo"
	if rep.ExactMeasured {
		kind = "exhaustive"
	}
	fmt.Printf("measurement: %s over %d patterns, %d outputs\n", kind, rep.NumPatterns, rep.NumOutputs)
	fmt.Printf("error rate:            %.6f (%.4f%%)\n", rep.ErrorRate, 100*rep.ErrorRate)
	fmt.Printf("mean hamming distance: %.6f bits/pattern\n", rep.MeanHamming)
	fmt.Printf("avg error magnitude:   %.6f (AEM rate %.6f%%)\n", rep.AvgErrMag, 100*rep.AEMRate)
	fmt.Printf("worst error magnitude: %.6f\n", rep.WorstErrMag)
	fmt.Printf("area: golden %.0f, approx %.0f (ratio %.3f)\n",
		batchals.Area(golden), batchals.Area(approx),
		batchals.Area(approx)/batchals.Area(golden))
}

func load(spec string) (*batchals.Network, error) {
	if strings.ContainsAny(spec, "/.") {
		return batchals.Load(spec)
	}
	return batchals.Benchmark(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "errstat:", err)
	os.Exit(1)
}
