package repro

import (
	"fmt"
	"strings"

	"batchals/internal/bench"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sasimi"
	"batchals/internal/sim"
)

// Table1Row compares the Monte Carlo estimate of a statistical error
// measure against its exact enumerated value for one approximate circuit
// (§5.2 of the paper: SER vs AER, SAEM vs AAEM).
type Table1Row struct {
	Circuit   string
	Metric    core.Metric
	Level     int     // approximation level (increasing error budget)
	Threshold float64 // budget that produced the approximate circuit
	Simulated float64 // MC estimate (SER or SAEM)
	Exact     float64 // exhaustive value (AER or AAEM)
}

// Table1 regenerates the MC-accuracy experiment: approximate circuits of
// increasing error are produced for alu4 and WTM8 under ER and for MUL8 and
// WTM8 under AEM; each is then measured by MC simulation (a fresh pattern
// seed, M patterns) and by exhaustive enumeration (these circuits have at
// most 16 inputs).
func Table1(opt Options) ([]Table1Row, error) {
	opt = opt.fill()
	erLevels := []float64{0.004, 0.006, 0.01, 0.015, 0.03, 0.05}
	aemLevels := []float64{2, 4, 8, 16, 30, 64}
	if opt.Fast {
		erLevels = erLevels[:3]
		aemLevels = aemLevels[:3]
	}

	type job struct {
		circuit string
		metric  core.Metric
		levels  []float64
	}
	jobs := []job{
		{"alu4", core.MetricER, erLevels},
		{"wtm8", core.MetricER, erLevels},
		{"mul8", core.MetricAEM, aemLevels},
		{"wtm8", core.MetricAEM, aemLevels},
	}

	var rows []Table1Row
	for _, j := range jobs {
		golden := benchOrDie(j.circuit, bench.ByName)
		for lvl, th := range j.levels {
			res, err := sasimi.Run(golden, sasimi.Config{
				Budget: flow.Budget{
					Metric:      j.metric,
					Threshold:   th,
					NumPatterns: opt.M,
					Seed:        opt.Seed,
				},
				Estimator: sasimi.EstimatorBatch,
			})
			if err != nil {
				return nil, fmt.Errorf("table1 %s level %d: %w", j.circuit, lvl, err)
			}
			// Measure with a fresh pattern seed so the MC estimate is
			// independent of the patterns that guided the flow.
			p := sim.RandomPatterns(golden.NumInputs(), opt.M, opt.Seed+1000)
			mc := emetric.Measure(golden, res.Approx, p)
			exact := emetric.MeasureExact(golden, res.Approx)
			simV, exV := mc.ErrorRate, exact.ErrorRate
			if j.metric == core.MetricAEM {
				simV, exV = mc.AvgErrMag, exact.AvgErrMag
			}
			rows = append(rows, Table1Row{
				Circuit:   j.circuit,
				Metric:    j.metric,
				Level:     lvl + 1,
				Threshold: th,
				Simulated: simV,
				Exact:     exV,
			})
		}
	}
	return rows, nil
}

// RenderTable1 formats Table 1 rows in the paper's layout (one block per
// circuit/metric pair).
func RenderTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: simulated vs accurate error (MC accuracy)\n")
	sb.WriteString(fmt.Sprintf("%-8s %-6s %5s %12s %12s %9s\n",
		"circuit", "metric", "level", "simulated", "exact", "rel.err"))
	for _, r := range rows {
		rel := 0.0
		if r.Exact != 0 {
			rel = (r.Simulated - r.Exact) / r.Exact
		}
		sb.WriteString(fmt.Sprintf("%-8s %-6s %5d %12.5f %12.5f %8.1f%%\n",
			r.Circuit, r.Metric, r.Level, r.Simulated, r.Exact, rel*100))
	}
	return sb.String()
}
