package work

import "batchals/internal/par"

// Good indexes the word slice only through the shard's range.
func Good(words []uint64, m int) {
	for _, sh := range par.Shards(m, 4) {
		for w := sh.W0; w < sh.W1; w++ {
			words[w] = 0
		}
	}
}

// BadZero walks every word while holding a shard — it would overwrite
// words owned by the other workers.
func BadZero(words []uint64, m int) {
	for _, sh := range par.Shards(m, 4) {
		_ = sh
		for w := 0; w < len(words); w++ { // want "bounded by the shard's W0/W1"
			words[w] = 0
		}
	}
}

// BadHi uses the pattern bound where the word bound belongs.
func BadHi(words []uint64, m int) {
	sh := par.Shards(m, 2)[0]
	for w := sh.W0; w < sh.Hi; w++ { // want "bounded by the shard's W0/W1"
		words[w] = 0
	}
}

// NoShard is sequential code; full-range walks are its normal mode.
func NoShard(words []uint64) {
	for w := 0; w < len(words); w++ {
		words[w] = 0
	}
}

// Acknowledged is an accepted exception (a deliberate whole-vector
// reduction in a function that also handles shards).
func Acknowledged(words []uint64, m int) {
	sh := par.Shards(m, 2)[0]
	_ = sh
	for w := 0; w < len(words); w++ { //als:shard-ok read-only fold over all words
		words[w]++
	}
}
