// Command alslint runs the structural netlist analyzer (internal/analyze)
// over circuits and reports diagnostics with severity levels.
//
// Usage:
//
//	alslint rca8 mul8                    # registered benchmarks
//	alslint design.blif adder.bench      # BLIF / ISCAS-bench files
//	alslint -all                         # every registered benchmark
//	alslint -min warning design.blif     # hide info-level findings
//
// Targets with a path separator or an extension are parsed as files;
// anything else is looked up in the benchmark registry. Each finding is
// printed as
//
//	<target>: <severity>: [<pass>] <message>
//
// followed by a one-line structural summary (node count, CPM-exactness
// fraction, reconvergent stems, fanout-free regions). The exit status is
// 1 when any target has an error-level finding (combinational cycle,
// missing outputs, unparsable file) and 0 otherwise; warnings and info
// findings do not affect it.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"batchals"
	"batchals/internal/analyze"
)

func main() {
	var (
		all = flag.Bool("all", false, "lint every registered benchmark")
		min = flag.String("min", "info", "minimum severity to print: info, warning or error")
	)
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: alslint [-all] [-min sev] [target ...]")
		fmt.Fprintln(os.Stderr, "targets are benchmark names or .bench/.blif files")
		flag.PrintDefaults()
	}
	flag.Parse()

	minSev, ok := parseSeverity(*min)
	if !ok {
		fmt.Fprintf(os.Stderr, "alslint: bad -min %q (want info, warning or error)\n", *min)
		os.Exit(2)
	}

	targets := flag.Args()
	if *all {
		targets = append(batchals.BenchmarkNames(), targets...)
	}
	if len(targets) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, target := range targets {
		if !lintTarget(target, minSev) {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// lintTarget analyzes one benchmark or file and prints its findings.
// It returns false when the target has error-level findings.
func lintTarget(target string, minSev analyze.Severity) bool {
	net, err := load(target)
	if err != nil {
		// A file that cannot be parsed is itself a lint finding.
		fmt.Printf("%s: %s\n", target, analyze.Diagnostic{
			Pass: "parse", Sev: analyze.SevError, Msg: err.Error(),
		})
		return false
	}

	rep := analyze.Run(net)
	for _, d := range rep.Diags {
		// Severity values are ordered most-severe-first.
		if d.Sev <= minSev {
			fmt.Printf("%s: %s\n", target, d)
		}
	}
	if rep.Errors() > 0 {
		fmt.Printf("%s: FAIL (%d errors, %d warnings)\n", target, rep.Errors(), rep.Warnings())
		return false
	}
	fmt.Printf("%s: ok: %d nodes, %.1f%% CPM-exact (%d/%d), %d reconvergent stems, %d FFRs, %d warnings\n",
		target, net.NumNodes(), 100*rep.Cert.Fraction(), rep.Cert.NumExact(), rep.Cert.NumNodes(),
		numReconvergent(rep.Stems), rep.FFR.NumRegions(), rep.Warnings())
	return true
}

func numReconvergent(stems []analyze.Stem) int {
	n := 0
	for _, s := range stems {
		if s.Reconvergent {
			n++
		}
	}
	return n
}

// load resolves a target the same way errstat does: names with a path
// separator or extension are files, everything else is a registered
// benchmark.
func load(spec string) (*batchals.Network, error) {
	if strings.ContainsAny(spec, "/.") {
		return batchals.Load(spec)
	}
	return batchals.Benchmark(spec)
}

func parseSeverity(s string) (analyze.Severity, bool) {
	switch s {
	case "error":
		return analyze.SevError, true
	case "warning":
		return analyze.SevWarning, true
	case "info":
		return analyze.SevInfo, true
	}
	return 0, false
}
