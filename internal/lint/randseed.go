package lint

import "go/ast"

// RandSeed forbids the global math/rand source in library packages. Every
// flow in this repo promises bit-for-bit reproducibility from a Seed
// option; a single rand.Intn on the process-global source breaks that
// silently. Library code must thread a *rand.Rand built with
// rand.New(rand.NewSource(seed)). Test files and package main are exempt.
var RandSeed = &Analyzer{
	Name: "randseed",
	Doc:  "library packages must not use the global math/rand source",
	Run:  runRandSeed,
}

// globalRandFns are the top-level math/rand functions that draw from (or
// mutate) the package-global source.
var globalRandFns = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Seed": true,
	"Read": true, "N": true, "IntN": true, "Int32N": true, "Int64N": true,
	"UintN": true, "Uint32N": true, "Uint64N": true,
}

func runRandSeed(p *Pass) {
	if p.PkgName == "main" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		randName := importedAs(f, "math/rand")
		randV2 := importedAs(f, "math/rand/v2")
		if randName == "" && randV2 == "" {
			continue
		}
		ast.Inspect(f, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := sel.X.(*ast.Ident)
			if !ok || recv.Obj != nil { // Obj != nil: a local shadows the import
				return true
			}
			if (recv.Name == randName || recv.Name == randV2) && globalRandFns[sel.Sel.Name] {
				p.Reportf(call.Pos(),
					"%s.%s draws from the global math/rand source; use rand.New(rand.NewSource(seed)) so flows stay reproducible",
					recv.Name, sel.Sel.Name)
			}
			return true
		})
	}
}
