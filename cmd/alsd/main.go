// Command alsd is the ALS observability daemon: it executes a queue of
// synthesis jobs while serving live telemetry over HTTP — Prometheus
// /metrics (every run labelled run="name"), /metrics.json, per-run SSE
// event streams at /events, flight-recorder dumps at /flight, health and
// readiness probes, and the net/http/pprof surface.
//
// Usage:
//
//	alsd -addr :8415
//	alsd -addr 127.0.0.1:0 -repeat 3 -demo mul4
//
// The daemon prints "alsd: listening on ADDR" once the listener is bound
// (ADDR carries the real port when :0 requested an ephemeral one — the CI
// smoke test parses it). Jobs are submitted as JSON:
//
//	curl -X POST localhost:8415/jobs -d '{"circuit":"c880","threshold":0.01}'
//
// and run sequentially; each job gets its own metrics registry, stream
// tracer and flight recorder, registered under its run name. -repeat N
// enqueues N demo jobs at startup so a fresh daemon has live event
// traffic immediately.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"batchals"
	"batchals/internal/serve"
)

// jobSpec is the wire format of one queued synthesis job.
type jobSpec struct {
	Name          string  `json:"name,omitempty"` // run name (default job-N)
	Circuit       string  `json:"circuit"`        // benchmark name or file path
	Metric        string  `json:"metric,omitempty"`
	Threshold     float64 `json:"threshold"`
	Estimator     string  `json:"estimator,omitempty"`
	Patterns      int     `json:"m,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Workers       int     `json:"workers,omitempty"`
	VerifyTopK    int     `json:"verify,omitempty"`
	MaxIterations int     `json:"max_iters,omitempty"`
}

func main() {
	var (
		addr      = flag.String("addr", ":8415", "listen address (host:port; :0 picks an ephemeral port)")
		repeat    = flag.Int("repeat", 0, "enqueue this many demo jobs at startup")
		demo      = flag.String("demo", "mul4", "demo job circuit for -repeat")
		demoThr   = flag.Float64("demo-threshold", 0.05, "demo job error threshold")
		demoM     = flag.Int("demo-m", 2000, "demo job Monte Carlo pattern count")
		queueSize = flag.Int("queue", 64, "job queue capacity")
	)
	flag.Parse()

	rr := serve.NewRunRegistry()
	srv := serve.New(rr)
	jobs := make(chan jobSpec, *queueSize)
	var jobSeq atomic.Int64

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleJobs(w, r, rr, jobs, &jobSeq)
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("alsd: listening on %s\n", ln.Addr())
	httpSrv := &http.Server{Handler: mux}
	go func() { _ = httpSrv.Serve(ln) }()

	for i := 0; i < *repeat; i++ {
		spec := jobSpec{
			Name:      fmt.Sprintf("demo-%d", i+1),
			Circuit:   *demo,
			Threshold: *demoThr,
			Patterns:  *demoM,
			Seed:      int64(i),
		}
		rr.Get(spec.Name)
		jobs <- spec
	}
	srv.SetReady(true)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for spec := range jobs {
			runJob(rr, spec)
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("alsd: shutting down")
	srv.SetReady(false)
	close(jobs)
	wg.Wait()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = httpSrv.Shutdown(shutdownCtx)
}

// handleJobs enqueues a POSTed jobSpec without ever blocking the request:
// a full queue is 503, malformed JSON or an empty circuit is 400. The run
// is registered (state pending) before the 202 goes out, so a client can
// subscribe to /events?run=NAME immediately and see the flow's events
// from the first one — even when the job sits in the queue for a while.
func handleJobs(w http.ResponseWriter, r *http.Request, rr *serve.RunRegistry, jobs chan jobSpec, seq *atomic.Int64) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var spec jobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		http.Error(w, "bad job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	if spec.Circuit == "" {
		http.Error(w, "job spec needs a circuit", http.StatusBadRequest)
		return
	}
	if spec.Name == "" {
		spec.Name = fmt.Sprintf("job-%d", seq.Add(1))
	}
	select {
	case jobs <- spec:
		rr.Get(spec.Name)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		_ = json.NewEncoder(w).Encode(map[string]string{"run": spec.Name})
	default:
		http.Error(w, "job queue full", http.StatusServiceUnavailable)
	}
}

// runJob executes one job against its own run sinks; a panicking flow
// dumps the flight recorder to stderr before crashing the daemon.
func runJob(rr *serve.RunRegistry, spec jobSpec) {
	run := rr.Get(spec.Name)
	defer run.Flight.DumpOnPanic(os.Stderr)
	run.SetState(serve.RunActive, "")
	start := time.Now()
	res, err := execute(spec, run)
	if err != nil {
		run.SetState(serve.RunFailed, err.Error())
		fmt.Fprintf(os.Stderr, "alsd: run %s failed: %v\n", spec.Name, err)
		return
	}
	run.SetState(serve.RunDone, "")
	fmt.Printf("alsd: run %s done in %s: area %.0f -> %.0f (ratio %.3f), %d substitutions, error %.5f\n",
		spec.Name, time.Since(start).Round(time.Millisecond),
		res.OriginalArea, res.FinalArea, res.AreaRatio(), res.NumIterations, res.FinalError)
}

func execute(spec jobSpec, run *serve.Run) (*batchals.Result, error) {
	golden, err := loadCircuit(spec.Circuit)
	if err != nil {
		return nil, err
	}
	opts := batchals.Options{
		Threshold:     spec.Threshold,
		NumPatterns:   spec.Patterns,
		Seed:          spec.Seed,
		Workers:       spec.Workers,
		VerifyTopK:    spec.VerifyTopK,
		MaxIterations: spec.MaxIterations,
		Metrics:       run.Registry,
		Tracer:        run.Tracer(),
	}
	switch strings.ToLower(spec.Metric) {
	case "", "er":
		opts.Metric = batchals.ErrorRate
	case "aem":
		opts.Metric = batchals.AvgErrorMagnitude
	default:
		return nil, fmt.Errorf("unknown metric %q", spec.Metric)
	}
	switch strings.ToLower(spec.Estimator) {
	case "", "batch":
		opts.Estimator = batchals.Batch
	case "full":
		opts.Estimator = batchals.Full
	case "local":
		opts.Estimator = batchals.Local
	default:
		return nil, fmt.Errorf("unknown estimator %q", spec.Estimator)
	}
	return batchals.Approximate(golden, opts)
}

func loadCircuit(spec string) (*batchals.Network, error) {
	if strings.ContainsAny(spec, "/.") {
		return batchals.Load(spec)
	}
	return batchals.Benchmark(spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "alsd:", err)
	os.Exit(1)
}
