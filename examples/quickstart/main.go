// Quickstart: approximate an 8-bit array multiplier under a 1% error-rate
// budget with the paper's batch-estimation SASIMI flow, then verify the
// result independently.
package main

import (
	"fmt"
	"log"

	"batchals"
)

func main() {
	// 1. Get a golden circuit. Any of batchals.BenchmarkNames() works; you
	//    can also batchals.Load("my.bench") your own netlist.
	golden, err := batchals.Benchmark("mul8")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("golden: %s — %d inputs, %d outputs, area %.0f\n",
		golden.Name, golden.NumInputs(), golden.NumOutputs(), batchals.Area(golden))

	// 2. Run the approximation flow: batch estimator (the paper's method),
	//    error rate at most 2%, 10000 Monte Carlo patterns.
	res, err := batchals.Approximate(golden, batchals.Options{
		Metric:      batchals.ErrorRate,
		Threshold:   0.02,
		NumPatterns: 10000,
		Seed:        42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("approximated in %d substitutions: area %.0f -> %.0f (%.1f%% saved)\n",
		res.NumIterations, res.OriginalArea, res.FinalArea,
		100*(1-res.AreaRatio()))
	fmt.Printf("error measured during the flow: %.4f%%\n", 100*res.FinalError)

	// 3. Verify with an independent sample and, since MUL8 has only 16
	//    inputs, exactly by enumeration.
	mc := batchals.MeasureError(golden, res.Approx, 100000, 7)
	exact := batchals.MeasureErrorExact(golden, res.Approx)
	fmt.Printf("independent MC ER:  %.4f%% (M=100000)\n", 100*mc.ErrorRate)
	fmt.Printf("exact ER:           %.4f%% (all 65536 inputs)\n", 100*exact.ErrorRate)
	fmt.Printf("exact avg |error|:  %.3f (worst %.0f)\n", exact.AvgErrMag, exact.WorstErrMag)
}
