package sim

import (
	"math/rand"
	"testing"

	"batchals/internal/circuit"
	"batchals/internal/par"
)

// vecsEqual compares two value tables bit for bit over every live node.
func vecsEqual(t *testing.T, n *circuit.Network, a, b *Values) {
	t.Helper()
	if a.M != b.M {
		t.Fatalf("pattern counts differ: %d vs %d", a.M, b.M)
	}
	for _, id := range n.TopoOrder() {
		if !a.Node(id).Equal(b.Node(id)) {
			t.Fatalf("node %d differs:\n seq %s\n par %s", id, a.Node(id), b.Node(id))
		}
	}
}

func TestSimulateParallelBitIdentical(t *testing.T) {
	r := rand.New(rand.NewSource(91))
	// Pattern counts straddle word boundaries to exercise tail masking and
	// the shard planner's clamping.
	for _, m := range []int{1, 63, 64, 65, 200, 1000} {
		for trial := 0; trial < 4; trial++ {
			n := randomNetwork(t, r, 8, 60)
			p := RandomPatterns(8, m, int64(m)*10+int64(trial))
			want := Simulate(n, p)
			for _, workers := range []int{1, 2, 4, 7} {
				pool := par.NewPool(workers)
				got := SimulateParallel(n, p, pool)
				pool.Close()
				vecsEqual(t, n, want, got)
			}
		}
	}
}

func TestSimulateParallelNilPoolFallsBack(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	n := randomNetwork(t, r, 6, 30)
	p := RandomPatterns(6, 300, 3)
	vecsEqual(t, n, Simulate(n, p), SimulateParallel(n, p, nil))
}

// TestRaceSimulateParallel drives the sharded simulator with several
// workers under the race detector: any write outside a shard's word range
// trips -race. CI runs this at GOMAXPROCS=2 as well.
func TestRaceSimulateParallel(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	n := randomNetwork(t, r, 8, 120)
	p := RandomPatterns(8, 4096, 7)
	pool := par.NewPool(8)
	defer pool.Close()
	want := Simulate(n, p)
	for round := 0; round < 3; round++ {
		vecsEqual(t, n, want, SimulateParallel(n, p, pool))
	}
}
