// Package serve is the embeddable live-observability service: an
// HTTP server (stdlib only) exposing the obs metrics registries in
// Prometheus text and JSON form, server-sent event streams of live flow
// traces, per-run flight-recorder dumps, health/readiness probes and the
// net/http/pprof profiling surface. It is process-internal plumbing: a
// daemon (cmd/alsd) or a CLI run (cmd/alsrun -serve) attaches it to
// whatever runs it is executing.
package serve

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"batchals/internal/obs"
	"batchals/internal/obs/timeline"
)

// RunState is the lifecycle phase of a named run.
type RunState int32

// Run lifecycle states.
const (
	RunPending RunState = iota
	RunActive
	RunDone
	RunFailed
	RunCanceled // queued job canceled by daemon shutdown
	RunShed     // rejected by the bounded queue, never ran
)

// String returns the wire name of the state.
func (s RunState) String() string {
	switch s {
	case RunPending:
		return "pending"
	case RunActive:
		return "active"
	case RunDone:
		return "done"
	case RunFailed:
		return "failed"
	case RunCanceled:
		return "canceled"
	case RunShed:
		return "shed"
	}
	return "unknown"
}

// Terminal reports whether the run has finished (successfully or not).
func (s RunState) Terminal() bool {
	switch s {
	case RunDone, RunFailed, RunCanceled, RunShed:
		return true
	}
	return false
}

// Run bundles the observability sinks of one named flow run: its own
// metrics registry, a streaming tracer for live subscribers, and a flight
// recorder holding the recent event history. Wire it into a flow as
//
//	cfg.Metrics = run.Registry
//	cfg.Tracer  = run.Tracer()   // stream + flight fan-out
type Run struct {
	Name     string
	Registry *obs.Registry
	Stream   *obs.StreamTracer
	Flight   *obs.FlightRecorder

	state   atomic.Int32
	started time.Time
	err     atomic.Pointer[string]
	tl      atomic.Pointer[timeline.Recorder]
	trace   atomic.Pointer[JobTrace]
}

// SetJobTrace attaches the job-lifecycle trace the daemon keeps for this
// run, exported at /jobs/{name}.
func (r *Run) SetJobTrace(t *JobTrace) { r.trace.Store(t) }

// JobTrace returns the attached lifecycle trace, or nil for runs that
// were not submitted through the job queue.
func (r *Run) JobTrace() *JobTrace { return r.trace.Load() }

// SetTimeline publishes the run's span recorder so /timeline can export
// it while the flow is live (the recorder's snapshot is safe to read
// concurrently with writers). A nil rec detaches.
func (r *Run) SetTimeline(rec *timeline.Recorder) { r.tl.Store(rec) }

// Timeline returns the attached recorder, or nil.
func (r *Run) Timeline() *timeline.Recorder { return r.tl.Load() }

// Tracer returns the run's event sink: the stream tracer and flight
// recorder fanned out as one Tracer.
func (r *Run) Tracer() obs.Tracer { return obs.Multi(r.Stream, r.Flight) }

// SetState moves the run through its lifecycle; an optional error message
// accompanies RunFailed.
func (r *Run) SetState(s RunState, errMsg string) {
	r.state.Store(int32(s))
	if errMsg != "" {
		r.err.Store(&errMsg)
	}
}

// State returns the run's current lifecycle state.
func (r *Run) State() RunState { return RunState(r.state.Load()) }

// Err returns the failure message of a RunFailed run, or "".
func (r *Run) Err() string {
	if p := r.err.Load(); p != nil {
		return *p
	}
	return ""
}

// RunSummary is the JSON shape of one run in the /runs listing.
type RunSummary struct {
	Name        string `json:"name"`
	State       string `json:"state"`
	Error       string `json:"error,omitempty"`
	UptimeNS    int64  `json:"uptime_ns"`
	Subscribers int    `json:"subscribers"`
	Dropped     int64  `json:"dropped_events"`
}

// Summary returns the run's /runs listing entry.
func (r *Run) Summary() RunSummary {
	return RunSummary{
		Name:        r.Name,
		State:       r.State().String(),
		Error:       r.Err(),
		UptimeNS:    int64(time.Since(r.started)),
		Subscribers: r.Stream.Subscribers(),
		Dropped:     r.Stream.Dropped(),
	}
}

// RunRegistry tracks the named runs of one process. Get is get-or-create,
// so the serving layer and the job runner can race to name a run and agree
// on its sinks.
type RunRegistry struct {
	mu    sync.RWMutex
	runs  map[string]*Run
	order []string
}

// NewRunRegistry returns an empty registry.
func NewRunRegistry() *RunRegistry {
	return &RunRegistry{runs: make(map[string]*Run)}
}

// Get returns the run named name, creating it (with a fresh metrics
// registry, stream tracer and flight recorder) on first use.
func (rr *RunRegistry) Get(name string) *Run {
	rr.mu.RLock()
	r := rr.runs[name]
	rr.mu.RUnlock()
	if r != nil {
		return r
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if r = rr.runs[name]; r == nil {
		r = &Run{
			Name:     name,
			Registry: obs.NewRegistry(),
			Stream:   obs.NewStreamTracer(name),
			Flight:   obs.NewFlightRecorder(0),
			started:  time.Now(),
		}
		r.Stream.CountDropsIn(r.Registry, "serve_stream_dropped_total")
		rr.runs[name] = r
		rr.order = append(rr.order, name)
	}
	return r
}

// Trim evicts the oldest terminal runs until at most max remain,
// returning how many were dropped. Active and pending runs are never
// evicted, so under sustained load the registry holds every live job plus
// the freshest max-ish finished ones — this is what bounds alsd's memory
// when a load test pushes thousands of jobs through. max <= 0 trims
// nothing.
func (rr *RunRegistry) Trim(max int) int {
	if max <= 0 {
		return 0
	}
	rr.mu.Lock()
	defer rr.mu.Unlock()
	dropped := 0
	for len(rr.order) > max {
		evicted := false
		for i, name := range rr.order {
			r := rr.runs[name]
			if !r.State().Terminal() {
				continue
			}
			delete(rr.runs, name)
			rr.order = append(rr.order[:i], rr.order[i+1:]...)
			dropped++
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	return dropped
}

// Evict removes the named run if it exists and is terminal, reporting
// whether it was removed. Live runs are never evicted.
func (rr *RunRegistry) Evict(name string) bool {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	r, ok := rr.runs[name]
	if !ok || !r.State().Terminal() {
		return false
	}
	delete(rr.runs, name)
	for i, n := range rr.order {
		if n == name {
			rr.order = append(rr.order[:i], rr.order[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the run named name without creating it.
func (rr *RunRegistry) Lookup(name string) (*Run, bool) {
	rr.mu.RLock()
	defer rr.mu.RUnlock()
	r, ok := rr.runs[name]
	return r, ok
}

// Names returns the run names in creation order.
func (rr *RunRegistry) Names() []string {
	rr.mu.RLock()
	defer rr.mu.RUnlock()
	return append([]string(nil), rr.order...)
}

// Summaries returns the /runs listing in creation order.
func (rr *RunRegistry) Summaries() []RunSummary {
	rr.mu.RLock()
	runs := make([]*Run, 0, len(rr.order))
	for _, name := range rr.order {
		runs = append(runs, rr.runs[name])
	}
	rr.mu.RUnlock()
	out := make([]RunSummary, len(runs))
	for i, r := range runs {
		out[i] = r.Summary()
	}
	return out
}

// injectRunLabel rewrites a metric name so the run it came from survives a
// merged exposition: name -> name{run="x"}, name{a="b"} ->
// name{run="x",a="b"}. Histogram suffix surgery is handled downstream by
// WritePrometheus, which splits labels off the full name.
func injectRunLabel(name, run string) string {
	if run == "" {
		return name
	}
	label := `run="` + run + `"`
	if i := strings.IndexByte(name, '{'); i >= 0 {
		return name[:i] + "{" + label + "," + name[i+1:]
	}
	return name + "{" + label + "}"
}

// MergedSnapshot flattens every run's registry into one snapshot with
// run="name" labels injected, suitable for a single Prometheus scrape
// covering all concurrent runs. Metric names are disjoint across runs by
// construction (the label differs), so the merge never collides.
func (rr *RunRegistry) MergedSnapshot() obs.Snapshot {
	names := rr.Names()
	sort.Strings(names)
	merged := obs.Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]obs.HistogramSnapshot{},
	}
	for _, name := range names {
		r, ok := rr.Lookup(name)
		if !ok {
			continue
		}
		s := r.Registry.Snapshot()
		for k, v := range s.Counters {
			merged.Counters[injectRunLabel(k, name)] = v
		}
		for k, v := range s.Gauges {
			merged.Gauges[injectRunLabel(k, name)] = v
		}
		for k, v := range s.Histograms {
			merged.Histograms[injectRunLabel(k, name)] = v
		}
	}
	return merged
}
