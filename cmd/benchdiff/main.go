// Command benchdiff compares two committed BENCH_*.json baselines (the
// benchmeta schema written by cmd/benchjson) with noise-aware thresholds
// and exits nonzero on regression, making it usable as a CI gate.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -threshold 0.30 -alloc-threshold 0.10 BENCH_pr5.json /tmp/bench_now.json
//
// For every benchmark in OLD it prints an ns/op, B/op and allocs/op delta
// row. A benchmark regresses when:
//
//   - it is present in OLD but missing from NEW (a paper experiment's
//     benchmark silently disappeared), or
//   - its ns/op grew by more than threshold plus a noise pad scaled to
//     the iteration count (single-iteration benchtime=1x runs get a wide
//     pad — and a warning — because one iteration of a multi-millisecond
//     flow can swing ±2x on shared CI hardware), or
//   - its allocs/op grew by more than -alloc-threshold. Allocation counts
//     are deterministic for a fixed environment, so they get no noise
//     pad: they are the strongest same-machine regression signal this
//     gate has.
//
// Environment metadata (schema v2) is cross-checked. A differing CPU
// model downgrades timing regressions to warnings (the delta measures
// the hardware, not the code) but keeps the allocation gate armed. A
// differing GOMAXPROCS/NumCPU or Go version — or a v1 baseline with no
// env at all — downgrades the allocation gate too, because worker pools
// default to NumCPU (allocation counts follow the worker count) and
// compilers move allocations between versions. Missing benchmarks gate
// unconditionally, except names listed in -allow-missing (baseline
// entries recorded from full runs CI does not repeat, like the
// 15-CPU-minute monolithic 50k-gate flow). -warn-only reports everything
// but always exits 0.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"batchals/internal/benchmeta"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// diffConfig carries the comparison knobs.
type diffConfig struct {
	threshold      float64 // allowed fractional ns/op growth before padding
	allocThreshold float64 // allowed fractional allocs/op growth (no pad)
	warnOnly       bool
	allowMissing   map[string]bool // names exempt from the missing-benchmark gate
}

// noisePad widens the timing threshold for low-iteration baselines: the
// pad is the extra fractional growth attributed to measurement noise
// rather than the code.
func noisePad(iters int64) float64 {
	switch {
	case iters <= 1:
		return 2.00 // benchtime=1x: one sample, noise dominates
	case iters <= 4:
		return 0.50
	case iters <= 16:
		return 0.20
	default:
		return 0.05
	}
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cfg := diffConfig{}
	fs.Float64Var(&cfg.threshold, "threshold", 0.30, "allowed fractional ns/op growth before the noise pad")
	fs.Float64Var(&cfg.allocThreshold, "alloc-threshold", 0.10, "allowed fractional allocs/op growth (no noise pad)")
	fs.BoolVar(&cfg.warnOnly, "warn-only", false, "report regressions but exit 0")
	allowMissing := fs.String("allow-missing", "", "comma-separated benchmark names exempt from the missing-benchmark gate (baseline entries recorded from full runs that CI does not repeat)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: benchdiff [flags] OLD.json NEW.json\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return 2
	}
	if *allowMissing != "" {
		cfg.allowMissing = map[string]bool{}
		for _, name := range strings.Split(*allowMissing, ",") {
			cfg.allowMissing[strings.TrimSpace(name)] = true
		}
	}

	oldBase, err := benchmeta.Load(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}
	newBase, err := benchmeta.Load(fs.Arg(1))
	if err != nil {
		fmt.Fprintln(stderr, "benchdiff:", err)
		return 2
	}

	cmp := compareEnv(oldBase, newBase, stderr)
	if oldBase.MinIterations() <= 1 || newBase.MinIterations() <= 1 {
		fmt.Fprintln(stderr, "benchdiff: warning: benchtime=1x single-iteration timings; "+
			"ns/op deltas carry a wide noise pad and are advisory")
	}

	regressions := diff(oldBase, newBase, cfg, cmp, stdout)
	if len(regressions) == 0 {
		fmt.Fprintf(stdout, "\nno regressions across %d benchmarks\n", len(oldBase.Benchmarks))
		return 0
	}
	fmt.Fprintf(stderr, "\nbenchdiff: %d regression(s):\n", len(regressions))
	for _, r := range regressions {
		fmt.Fprintln(stderr, "  -", r)
	}
	if cfg.warnOnly {
		fmt.Fprintln(stderr, "benchdiff: -warn-only set; exiting 0")
		return 0
	}
	return 1
}

// envComparability says which of the gates the two baselines' shared
// environment can arm.
type envComparability struct {
	timing bool // same CPU model, parallelism and toolchain
	allocs bool // same parallelism (worker pools default to NumCPU) and toolchain
}

// compareEnv classifies the two baselines' environments, warning on any
// mismatch. Legacy v1 baselines have no env, so neither timing nor
// allocation deltas can be attributed to the code with confidence.
func compareEnv(oldBase, newBase *benchmeta.Baseline, stderr io.Writer) envComparability {
	oe, ne := oldBase.Env, newBase.Env
	if oe == nil || ne == nil {
		fmt.Fprintln(stderr, "benchdiff: warning: baseline without env metadata (schema v1); "+
			"cannot verify the runs are comparable — timing and allocation deltas are advisory")
		return envComparability{}
	}
	cmp := envComparability{timing: true, allocs: true}
	warn := func(field, o, n string) {
		fmt.Fprintf(stderr, "benchdiff: warning: %s differs (%q vs %q); affected deltas measure the environment, not the code\n", field, o, n)
	}
	if oe.CPUModel != ne.CPUModel && oe.CPUModel != "" && ne.CPUModel != "" {
		warn("cpu model", oe.CPUModel, ne.CPUModel)
		cmp.timing = false
	}
	if oe.GOMAXPROCS != ne.GOMAXPROCS {
		warn("GOMAXPROCS", fmt.Sprint(oe.GOMAXPROCS), fmt.Sprint(ne.GOMAXPROCS))
		cmp.timing, cmp.allocs = false, false
	}
	if oe.NumCPU != ne.NumCPU {
		warn("NumCPU", fmt.Sprint(oe.NumCPU), fmt.Sprint(ne.NumCPU))
		cmp.timing, cmp.allocs = false, false
	}
	if oe.GoVersion != ne.GoVersion {
		warn("go version", oe.GoVersion, ne.GoVersion)
		cmp.timing, cmp.allocs = false, false
	}
	return cmp
}

// diff prints the per-benchmark delta table and returns the regression
// descriptions. Timing and allocation regressions gate only when the
// environments make them attributable to the code; missing benchmarks
// gate unconditionally.
func diff(oldBase, newBase *benchmeta.Baseline, cfg diffConfig, cmp envComparability, stdout io.Writer) []string {
	byName := map[string]benchmeta.Bench{}
	for _, b := range newBase.Benchmarks {
		byName[b.Name] = b
	}
	names := make([]string, 0, len(oldBase.Benchmarks))
	oldBy := map[string]benchmeta.Bench{}
	for _, b := range oldBase.Benchmarks {
		names = append(names, b.Name)
		oldBy[b.Name] = b
	}
	sort.Strings(names)

	var regressions []string
	fmt.Fprintf(stdout, "%-44s %14s %14s %8s %8s %8s\n",
		"benchmark", "old ns/op", "new ns/op", "Δns", "Δallocs", "verdict")
	for _, name := range names {
		ob := oldBy[name]
		nb, ok := byName[name]
		if !ok {
			if cfg.allowMissing[name] {
				fmt.Fprintf(stdout, "%-44s %14s %14s %8s %8s %8s\n",
					name, fmtNum(ob.Metrics["ns/op"]), "-", "-", "-", "exempt")
				continue
			}
			fmt.Fprintf(stdout, "%-44s %14s %14s %8s %8s %8s\n",
				name, fmtNum(ob.Metrics["ns/op"]), "-", "-", "-", "MISSING")
			regressions = append(regressions,
				fmt.Sprintf("%s: present in %s, missing from the new run", name, "old baseline"))
			continue
		}

		verdict := "ok"
		nsDelta, nsKnown := fracDelta(ob.Metrics["ns/op"], nb.Metrics["ns/op"])
		allocDelta, allocKnown := fracDelta(ob.Metrics["allocs/op"], nb.Metrics["allocs/op"])

		iters := ob.Iterations
		if nb.Iterations < iters {
			iters = nb.Iterations
		}
		pad := noisePad(iters)
		if nsKnown && nsDelta > cfg.threshold+pad {
			if cmp.timing {
				verdict = "SLOWER"
				regressions = append(regressions, fmt.Sprintf(
					"%s: ns/op %+.1f%% exceeds %.0f%% threshold (+%.0f%% noise pad at %d iterations)",
					name, 100*nsDelta, 100*cfg.threshold, 100*pad, iters))
			} else {
				verdict = "slower?"
			}
		}
		if allocKnown && allocDelta > cfg.allocThreshold {
			if cmp.allocs {
				verdict = "ALLOCS"
				regressions = append(regressions, fmt.Sprintf(
					"%s: allocs/op %+.1f%% exceeds %.0f%% threshold (allocation counts are deterministic for this environment; this is code, not noise)",
					name, 100*allocDelta, 100*cfg.allocThreshold))
			} else {
				verdict = "allocs?"
			}
		}
		fmt.Fprintf(stdout, "%-44s %14s %14s %8s %8s %8s\n",
			name, fmtNum(ob.Metrics["ns/op"]), fmtNum(nb.Metrics["ns/op"]),
			fmtPct(nsDelta, nsKnown), fmtPct(allocDelta, allocKnown), verdict)
	}
	return regressions
}

// fracDelta returns (new-old)/old and whether both sides are usable.
// A zero old value with a zero new value is "no change"; zero old with
// nonzero new (e.g. allocs/op going 0 -> 3) is reported as +Inf-like 1e9.
func fracDelta(o, n float64) (float64, bool) {
	switch {
	case o == 0 && n == 0:
		return 0, true
	case o == 0:
		return 1e9, true
	case n == 0 && o != 0:
		return -1, true
	case o > 0 && n > 0:
		return (n - o) / o, true
	}
	return 0, false
}

func fmtNum(v float64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f", v)
}

func fmtPct(d float64, known bool) string {
	if !known {
		return "-"
	}
	if d >= 1e9 {
		return "+inf"
	}
	return fmt.Sprintf("%+.0f%%", 100*d)
}
