package batchals

// BenchmarkStreamTracerOverhead measures what live observability costs a
// flow: the full c880 batch-estimation flow under a nil tracer versus the
// same flow publishing into a StreamTracer with one connected-but-idle
// SSE-style subscriber (attached, never read — the worst case for a
// non-blocking fan-out, since every publish walks the subscriber map and
// hits the full channel's drop path). The stream sub-benchmark reports
// overhead_pct against a nil-tracer baseline measured in the same
// process; the serving layer's budget is <=5%, recorded in
// BENCH_pr4.json. Results are bit-identical either way, pinned by
// internal/serve's TestServedFlowIsBitIdentical.

import (
	"sync"
	"testing"
	"time"

	"batchals/internal/obs"
)

// streamOvBaseline memoises the nil-tracer wall time of the benchmark's
// workload so the stream sub-benchmark's overhead_pct has a denominator
// measured on the same hardware in the same process.
var streamOvBaseline struct {
	once sync.Once
	ns   float64
}

const (
	streamOvPatterns  = 1024
	streamOvThreshold = 0.05
)

func streamOvFlowOnce(b *testing.B, golden *Network, tr Tracer) {
	res, err := Approximate(golden, Options{
		Metric:      ErrorRate,
		Threshold:   streamOvThreshold,
		NumPatterns: streamOvPatterns,
		Seed:        1,
		Tracer:      tr,
	})
	if err != nil {
		b.Fatal(err)
	}
	if res.NumIterations == 0 {
		b.Fatal("flow accepted nothing on c880; the tracer had no events to publish")
	}
}

func BenchmarkStreamTracerOverhead(b *testing.B) {
	golden, err := Benchmark("c880")
	if err != nil {
		b.Fatal(err)
	}
	streamOvBaseline.once.Do(func() {
		streamOvFlowOnce(b, golden, nil) // warm caches so the baseline is not a cold start
		start := time.Now()
		streamOvFlowOnce(b, golden, nil)
		streamOvBaseline.ns = float64(time.Since(start).Nanoseconds())
	})

	b.Run("tracer=nil", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			streamOvFlowOnce(b, golden, nil)
		}
	})

	b.Run("tracer=stream", func(b *testing.B) {
		stream := obs.NewStreamTracer("bench")
		events, cancel := stream.Subscribe(16) // connected, never read
		defer cancel()
		_ = events
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			streamOvFlowOnce(b, golden, stream)
		}
		perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		if streamOvBaseline.ns > 0 {
			b.ReportMetric(100*(perOp-streamOvBaseline.ns)/streamOvBaseline.ns, "overhead_pct")
		}
	})
}
