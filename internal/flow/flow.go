// Package flow holds the configuration surface shared by every iterative
// ALS flow in this library. The three flows (sasimi, snap, wu) used to
// carry near-identical copies of the same budget fields; Budget is the
// single shared definition they now embed, and the typed sentinel errors
// below replace the ad-hoc fmt.Errorf validation failures so callers can
// branch with errors.Is.
package flow

import (
	"errors"
	"fmt"

	"batchals/internal/cell"
	"batchals/internal/core"
)

// Typed validation sentinels. Flows wrap these with context via %w, so
// errors.Is(err, flow.ErrBadThreshold) works on anything a flow returns.
var (
	// ErrBadThreshold marks a threshold outside the metric's valid range
	// (negative for either metric).
	ErrBadThreshold = errors.New("bad error threshold")
	// ErrNoPatterns marks an empty or negative Monte Carlo sample: the
	// statistical estimate is undefined without at least one pattern.
	ErrNoPatterns = errors.New("no simulation patterns")
)

// Budget is the error-budget and run-length configuration common to every
// iterative flow: which statistical error measure to constrain, how much
// of it to spend, the Monte Carlo sample that measures it, and the area
// model the optimisation trades it against. Flow-specific Config structs
// embed Budget, so the shared fields promote to the flow's configuration
// surface unchanged.
type Budget struct {
	// Metric is the statistical error measure the Threshold constrains.
	Metric core.Metric
	// Threshold is the error budget: a fraction in [0,1] for ER, an
	// absolute magnitude for AEM.
	Threshold float64
	// NumPatterns is the Monte Carlo sample size M (default 10000).
	NumPatterns int
	// Seed drives the pattern generator; the same seed reproduces the
	// whole flow bit-for-bit.
	Seed int64
	// Library provides area and delay figures (default cell.Default()).
	Library *cell.Library
	// MaxIterations stops the flow after this many accepted
	// transformations (0 = unlimited).
	MaxIterations int
}

// FillDefaults replaces zero values with the library-wide defaults shared
// by every flow.
func (b *Budget) FillDefaults() {
	if b.NumPatterns == 0 {
		b.NumPatterns = 10000
	}
	if b.Library == nil {
		b.Library = cell.Default()
	}
}

// Validate checks the budget fields, wrapping the typed sentinels with the
// flow's name for context. Call after FillDefaults.
func (b *Budget) Validate(flowName string) error {
	if b.Threshold < 0 {
		return fmt.Errorf("%s: %w: negative threshold %g", flowName, ErrBadThreshold, b.Threshold)
	}
	if b.NumPatterns <= 0 {
		return fmt.Errorf("%s: %w: NumPatterns %d", flowName, ErrNoPatterns, b.NumPatterns)
	}
	return nil
}
