// Package obs is the flow-wide observability layer: a metrics registry
// (counters, gauges, fixed-bucket histograms) snapshotable as JSON or
// Prometheus text, a Tracer event interface the ALS flows drive, per-phase
// wall-time and allocation accounting for the five flow phases, and
// estimator-drift recording split by the CPM-exactness certificate.
//
// The package is stdlib-only and imports nothing else from this module, so
// every other package (sim, core, sasimi, the commands) can depend on it
// without cycles. Instrumentation follows two disciplines:
//
//   - Always-on substrate counters (simulations run, CPM builds, delta
//     queries) are pre-resolved package variables backed by a single
//     atomic add — cheap enough to leave enabled unconditionally.
//   - Event tracing and memory accounting are opt-in: a nil Tracer and a
//     nil Registry in a flow config short-circuit before any argument is
//     materialised, so the hot candidate-scoring loop allocates exactly
//     what it did before this layer existed (asserted by
//     sasimi's TestNilTracerScoringAllocs).
package obs

import "time"

// Tracer receives flow events. Implementations must be safe for use from
// the single flow goroutine; they need not be concurrency-safe. Any method
// may be a no-op. A nil Tracer in a flow config disables event emission
// entirely (the flow never calls through a nil interface).
type Tracer interface {
	// OnPhase is called at the end of every timed phase span with its
	// duration and (when memory tracking is enabled) allocation delta.
	OnPhase(PhaseInfo)
	// OnIteration is called once per flow iteration, after candidate
	// scoring and selection, whether or not a candidate was accepted.
	OnIteration(IterationInfo)
	// OnCandidate is called for every scored candidate. This is the
	// highest-volume event; JSONLTracer drops it unless opted in.
	OnCandidate(CandidateInfo)
	// OnAccept is called for every accepted substitution, after the
	// post-apply measurement, with the predicted-vs-actual drift.
	OnAccept(AcceptInfo)
}

// PhaseInfo describes one completed phase span.
type PhaseInfo struct {
	Phase    Phase         `json:"phase"`
	Iter     int           `json:"iter"` // 0 for spans outside the iteration loop
	Duration time.Duration `json:"ns"`
	Mem      MemDelta      `json:"mem,omitempty"` // zero unless memory tracking is on
}

// IterationInfo summarises one flow iteration.
type IterationInfo struct {
	Iter       int           `json:"iter"`
	CurErr     float64       `json:"cur_err"`  // measured error entering the iteration
	Candidates int           `json:"cands"`    // candidates scored
	Feasible   int           `json:"feasible"` // candidates within the remaining budget
	Accepted   bool          `json:"accepted"`
	Duration   time.Duration `json:"ns"`
}

// CandidateInfo describes one scored candidate.
type CandidateInfo struct {
	Iter     int     `json:"iter"`
	Target   string  `json:"target"`
	Sub      string  `json:"sub"` // "const0"/"const1" for constant substitution
	Inverted bool    `json:"inv,omitempty"`
	Delta    float64 `json:"delta"` // estimated increased error
	Gain     float64 `json:"gain"`  // predicted area gain
	Score    float64 `json:"score"`
	Exact    bool    `json:"exact"` // estimate carries the CPM-exactness certificate
}

// AcceptInfo describes one accepted substitution.
type AcceptInfo struct {
	Iter      int     `json:"iter"`
	Target    string  `json:"target"`
	Sub       string  `json:"sub"`
	Inverted  bool    `json:"inv,omitempty"`
	Predicted float64 `json:"pred_err"`   // curErr + estimated delta
	Actual    float64 `json:"actual_err"` // measured error after applying
	Drift     float64 `json:"drift"`      // Actual - Predicted
	Exact     bool    `json:"exact"`      // chosen candidate's exactness certificate
	Area      float64 `json:"area"`       // circuit area after applying

	// Statistical confidence accounting for the M-sample MC estimate
	// behind this accept (filled by ER flows; zero — ErrCI.Valid() false —
	// when the metric has no Binomial error count, e.g. AEM).
	M       int      `json:"m,omitempty"`        // MC sample size
	ErrCI   Interval `json:"err_ci,omitempty"`   // Wilson interval on Actual
	DeltaHW float64  `json:"delta_hw,omitempty"` // Hoeffding half-width on the estimated ΔER
	// CIAdequate is false when ErrCI straddles the flow's error threshold:
	// the accept/reject decision was made inside the sample noise and M is
	// too small to trust it.
	CIAdequate bool `json:"ci_adequate,omitempty"`
}

// VerifyInfo describes one exact recheck of a batch-estimated candidate
// (the VerifyTopK path). It is routed to drift accounting rather than the
// Tracer: per-candidate verification drift is an estimator-quality
// observable, not a flow event.
type VerifyInfo struct {
	Iter      int
	Target    string
	Predicted float64 // batch-estimated delta
	Actual    float64 // exact resimulated delta
	Exact     bool    // certificate of the batch estimate
}

// CandidateFilter is an optional Tracer capability: a tracer returning
// false from WantsCandidates promises to drop every OnCandidate event, so
// flows may skip materialising per-candidate event arguments — the hottest
// event path — entirely. Tracers without the method are assumed to consume
// candidates.
type CandidateFilter interface {
	WantsCandidates() bool
}

// WantsCandidates reports whether tr consumes OnCandidate events: false
// for nil tracers and for CandidateFilter implementations that decline,
// true otherwise.
func WantsCandidates(tr Tracer) bool {
	if tr == nil {
		return false
	}
	if f, ok := tr.(CandidateFilter); ok {
		return f.WantsCandidates()
	}
	return true
}

// multiTracer fans events out to several tracers.
type multiTracer []Tracer

// Multi combines tracers into one; nil entries are dropped. Multi(nil...)
// and Multi() return nil, preserving the nil-tracer fast path.
func Multi(ts ...Tracer) Tracer {
	var live multiTracer
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

func (m multiTracer) OnPhase(i PhaseInfo) {
	for _, t := range m {
		t.OnPhase(i)
	}
}

func (m multiTracer) OnIteration(i IterationInfo) {
	for _, t := range m {
		t.OnIteration(i)
	}
}

// WantsCandidates reports whether any member consumes candidate events.
func (m multiTracer) WantsCandidates() bool {
	for _, t := range m {
		if WantsCandidates(t) {
			return true
		}
	}
	return false
}

func (m multiTracer) OnCandidate(i CandidateInfo) {
	for _, t := range m {
		t.OnCandidate(i)
	}
}

func (m multiTracer) OnAccept(i AcceptInfo) {
	for _, t := range m {
		t.OnAccept(i)
	}
}
