package sim

import (
	"testing"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/par"
)

// TestResimulateFromMatchesFreshSimulation pins the in-place edit
// resimulation: after a substitution edit, ResimulateFrom must leave every
// live node's value vector bit-identical to a from-scratch simulation of
// the edited network, at any worker count, and must report exactly the
// nodes whose vectors changed.
func TestResimulateFromMatchesFreshSimulation(t *testing.T) {
	for _, workers := range []int{1, 3} {
		n, err := bench.ByName("rca8")
		if err != nil {
			t.Fatal(err)
		}
		pool := par.NewPool(workers)
		patterns := RandomPatterns(n.NumInputs(), 700, 2)
		vals := SimulateParallel(n, patterns, pool)
		before := make(map[circuit.NodeID][]uint64)
		for _, id := range n.LiveNodes() {
			before[id] = append([]uint64(nil), vals.Node(id).WordsSlice()...)
		}

		// One substitution edit: rewire the fanouts of a gate onto a fresh
		// NOT of one of its cone-external peers, then sweep.
		var target, sub circuit.NodeID
		found := false
		for _, tt := range n.LiveNodes() {
			if !n.Kind(tt).IsGate() {
				continue
			}
			tfo := n.TransitiveFanoutCone(tt)
			for _, ss := range n.LiveNodes() {
				if ss != tt && !tfo[ss] && (n.Kind(ss).IsGate() || n.Kind(ss) == circuit.KindInput) {
					target, sub, found = tt, ss, true
					break
				}
			}
			if found {
				break
			}
		}
		if !found {
			t.Fatal("no substitution available")
		}
		repl := n.AddGate(circuit.KindNot, sub)
		rewired := append([]circuit.NodeID(nil), n.Fanouts(target)...)
		n.ReplaceNode(target, repl)
		removed, _ := n.SweepFromCollect(target)

		seeds := append(append([]circuit.NodeID(nil), rewired...), repl)
		resimmed, changed := ResimulateFrom(n, vals, seeds, pool)
		for _, id := range removed {
			vals.Drop(id)
		}

		fresh := SimulateParallel(n, patterns, pool)
		for _, id := range n.LiveNodes() {
			if !vals.Node(id).Equal(fresh.Node(id)) {
				t.Fatalf("workers=%d: node %d diverges from fresh simulation", workers, id)
			}
		}

		// changed must be exactly the live nodes whose vectors moved.
		changedSet := make(map[circuit.NodeID]bool, len(changed))
		for _, id := range changed {
			changedSet[id] = true
		}
		resimSet := make(map[circuit.NodeID]bool, len(resimmed))
		for _, id := range resimmed {
			resimSet[id] = true
		}
		for _, id := range n.LiveNodes() {
			old, had := before[id]
			if !had {
				continue // added node, outside the before snapshot
			}
			moved := false
			now := vals.Node(id).WordsSlice()
			for w := range now {
				if now[w] != old[w] {
					moved = true
					break
				}
			}
			if moved && !changedSet[id] {
				t.Fatalf("workers=%d: node %d changed value but is not reported", workers, id)
			}
			if changedSet[id] && !moved {
				t.Fatalf("workers=%d: node %d reported changed but its vector is identical", workers, id)
			}
			if changedSet[id] && !resimSet[id] {
				t.Fatalf("workers=%d: node %d changed but was not resimulated", workers, id)
			}
		}
		pool.Close()
	}
}

// TestResimulateConeParallelMatchesSequential pins the pattern-sharded
// cone resimulation against the sequential ResimulateCone.
func TestResimulateConeParallelMatchesSequential(t *testing.T) {
	n, err := bench.ByName("cmp8")
	if err != nil {
		t.Fatal(err)
	}
	patterns := RandomPatterns(n.NumInputs(), 600, 4)
	pool := par.NewPool(3)
	defer pool.Close()

	for _, root := range n.LiveNodes() {
		if !n.Kind(root).IsGate() {
			continue
		}
		seqVals := SimulateParallel(n, patterns, nil)
		parVals := SimulateParallel(n, patterns, pool)
		// Perturb the root identically in both tables, then resimulate its
		// cone both ways.
		seqVals.Node(root).Not(seqVals.Node(root))
		parVals.Node(root).Not(parVals.Node(root))
		ResimulateCone(n, seqVals, root)
		ResimulateConeParallel(n, parVals, root, pool)
		for _, id := range n.LiveNodes() {
			if !seqVals.Node(id).Equal(parVals.Node(id)) {
				t.Fatalf("root %d: node %d diverges between sequential and parallel cone resim", root, id)
			}
		}
	}
}
