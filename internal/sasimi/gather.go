package sasimi

import (
	"math/bits"
	"sort"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/sim"
)

// gatherEnv bundles the read-only inputs of one iteration's candidate
// enumeration: the network, the value table, the timing/area model and the
// similarity screens. It factors the per-target enumeration out of
// gatherCandidatesParallel so the incremental gather cache can reuse the
// identical code — computeTarget and evalPair must reproduce the
// sequential gatherCandidates enumeration decision for decision, because
// the flow's bit-identity contract hangs off the candidate list.
type gatherEnv struct {
	net      *circuit.Network
	vals     *sim.Values
	cfg      *Config
	arrival  []float64
	invDelay float64
	invArea  float64
	subs     []circuit.NodeID // admissible substitutes, ascending id

	m           int
	prefixWords int
	prefixBits  int
	prefixCap   float64
}

func newGatherEnv(net *circuit.Network, vals *sim.Values, cfg *Config, arrival []float64, invDelay float64) *gatherEnv {
	m := vals.M
	subs := make([]circuit.NodeID, 0, net.NumNodes())
	for _, id := range net.LiveNodes() {
		k := net.Kind(id)
		if k.IsGate() || k == circuit.KindInput {
			subs = append(subs, id)
		}
	}
	prefixWords := bitvec.Words(m)
	if prefixWords > 4 {
		prefixWords = 4
	}
	prefixBits := prefixWords * bitvec.WordBits
	if prefixBits > m {
		prefixBits = m
	}
	return &gatherEnv{
		net:         net,
		vals:        vals,
		cfg:         cfg,
		arrival:     arrival,
		invDelay:    invDelay,
		invArea:     cfg.Library.GateArea(circuit.KindNot, 1),
		subs:        subs,
		m:           m,
		prefixWords: prefixWords,
		prefixBits:  prefixBits,
		prefixCap:   cfg.SimilarityCap*2 + 0.1,
	}
}

// targetData is the per-target gather state: the target's candidate bucket
// in canonical enumeration order (constants first, then pairs by ascending
// substitute id with plain before inverted — exactly the sequential
// enumeration order), plus the MFFC-derived quantities and the dependency
// set the incremental cache probes to decide staleness.
type targetData struct {
	live     bool
	baseGain float64
	mffc     []circuit.NodeID
	// deps are the nodes whose records the MFFC computation read: the cone
	// nodes themselves (fanin lists) and their fanins (fanout counts and
	// output-driver status). If none of them was touched by an edit, the
	// MFFC, baseGain and every pairGain of this target are unchanged.
	deps   []circuit.NodeID
	bucket []Candidate
}

// computeTarget enumerates target t's full candidate bucket. diff is an
// M-bit scratch vector owned by the caller. When wantDeps is set the
// dependency set is recorded for the incremental cache.
func (env *gatherEnv) computeTarget(t circuit.NodeID, diff *bitvec.Vec, wantDeps bool) targetData {
	td := targetData{live: true}
	td.mffc = env.net.MFFC(t)
	for _, id := range td.mffc {
		td.baseGain += env.cfg.Library.GateArea(env.net.Kind(id), len(env.net.Fanins(id)))
	}
	if wantDeps {
		seen := make(map[circuit.NodeID]bool, 2*len(td.mffc))
		for _, id := range td.mffc {
			if !seen[id] {
				seen[id] = true
				td.deps = append(td.deps, id)
			}
		}
		for _, id := range td.mffc {
			for _, f := range env.net.Fanins(id) {
				if !seen[f] {
					seen[f] = true
					td.deps = append(td.deps, f)
				}
			}
		}
	}
	if td.baseGain <= 0 {
		return td
	}

	tv := env.vals.Node(t)
	tfo := env.net.TransitiveFanoutCone(t)
	tArr := env.arrival[t]

	// Constant substitutions: always delay-safe and cycle-safe.
	ones := tv.Count()
	p1 := float64(ones) / float64(env.m)
	if p0 := 1 - p1; p0 <= env.cfg.SimilarityCap {
		td.bucket = append(td.bucket, Candidate{Target: t, Sub: circuit.InvalidNode,
			Const: true, ConstVal: true, DiffProb: p0, AreaGain: td.baseGain})
	}
	if p1 <= env.cfg.SimilarityCap {
		td.bucket = append(td.bucket, Candidate{Target: t, Sub: circuit.InvalidNode,
			Const: true, ConstVal: false, DiffProb: p1, AreaGain: td.baseGain})
	}

	for _, s := range env.subs {
		if s == t || tfo[s] {
			continue
		}
		td.bucket = env.evalPair(td.bucket, &td, t, s, tv, tArr, diff)
	}
	return td
}

// evalPair appends the admissible plain and inverted candidates of the
// pair (t, s) — the body of the enumeration's inner loop. The caller has
// already screened s == t and the cycle check (s in t's fanout cone).
func (env *gatherEnv) evalPair(out []Candidate, td *targetData, t, s circuit.NodeID, tv *bitvec.Vec, tArr float64, diff *bitvec.Vec) []Candidate {
	sv := env.vals.Node(s)
	if env.prefixWords > 0 {
		d := 0
		tw, sw := tv.WordsSlice(), sv.WordsSlice()
		for w := 0; w < env.prefixWords; w++ {
			d += bits.OnesCount64(tw[w] ^ sw[w])
		}
		frac := float64(d) / float64(env.prefixBits)
		if frac > env.prefixCap && (1-frac) > env.prefixCap {
			return out
		}
	}
	diff.Xor(tv, sv)
	dp := float64(diff.Count()) / float64(env.m)

	if dp <= env.cfg.SimilarityCap && env.arrival[s] <= tArr {
		if g := env.pairGain(td, t, s); g > 0 {
			out = append(out, Candidate{Target: t, Sub: s, DiffProb: dp, AreaGain: g})
		}
	}
	if idp := 1 - dp; idp <= env.cfg.SimilarityCap && env.arrival[s]+env.invDelay <= tArr {
		if g := env.pairGain(td, t, s) - env.invArea; g > 0 {
			out = append(out, Candidate{Target: t, Sub: s, Inverted: true, DiffProb: idp, AreaGain: g})
		}
	}
	return out
}

// pairGain returns the exact area reclaimed when t is replaced by s: the
// base MFFC gain, or — for the uncommon substitute inside t's MFFC — the
// gain with s pinned alive.
func (env *gatherEnv) pairGain(td *targetData, t, s circuit.NodeID) float64 {
	in := false
	for _, id := range td.mffc {
		if id == s {
			in = true
			break
		}
	}
	if !in {
		return td.baseGain
	}
	g := 0.0
	for _, id := range env.net.MFFCExcluding(t, s) {
		g += env.cfg.Library.GateArea(env.net.Kind(id), len(env.net.Fanins(id)))
	}
	return g
}

// liveGateTargets returns the admissible substitution targets, ascending.
func liveGateTargets(net *circuit.Network) []circuit.NodeID {
	targets := make([]circuit.NodeID, 0, net.NumNodes())
	for _, id := range net.LiveNodes() {
		if net.Kind(id).IsGate() {
			targets = append(targets, id)
		}
	}
	return targets
}

// candLess is the flow's deterministic candidate order: most similar
// first, ties by larger gain, then by candidate identity (target,
// substitute, constant value, inversion). The trailing identity fields
// make this a strict total order over distinct candidates — no two
// different candidates ever compare equal (constants carry Sub ==
// circuit.InvalidNode, so they never tie with pairs on the same target).
// Totality is what lets the incremental gather cache maintain the sorted
// list by filter-and-merge: the sorted permutation of any candidate
// multiset is unique, so a merge of sorted pieces is bit-identical to a
// from-scratch sort of the flattened buckets.
func candLess(a, b *Candidate) bool {
	if a.DiffProb != b.DiffProb {
		return a.DiffProb < b.DiffProb
	}
	if a.AreaGain != b.AreaGain {
		return a.AreaGain > b.AreaGain
	}
	if a.Target != b.Target {
		return a.Target < b.Target
	}
	if a.Sub != b.Sub {
		return a.Sub < b.Sub
	}
	if a.ConstVal != b.ConstVal {
		return a.ConstVal
	}
	return !a.Inverted && b.Inverted
}

func sortCandidates(cands []Candidate) {
	sort.Slice(cands, func(i, j int) bool { return candLess(&cands[i], &cands[j]) })
}

// sortAndCap applies the deterministic candidate order and the
// MaxCandidates truncation. Every gather path funnels through candLess,
// so identical candidate multisets yield identical lists.
func sortAndCap(cands []Candidate, cfg *Config) []Candidate {
	sortCandidates(cands)
	if cfg.MaxCandidates > 0 && len(cands) > cfg.MaxCandidates {
		cands = cands[:cfg.MaxCandidates]
	}
	return cands
}
