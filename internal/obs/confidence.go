package obs

// Statistical confidence accounting for Monte-Carlo error estimates. The
// paper's batch estimator prices every candidate AT from one M-pattern MC
// sample, so each ΔER and each measured post-accept error rate is itself a
// random variable; this file turns "how good is M?" from folklore into
// telemetry. Two interval constructions are provided:
//
//   - Wilson score intervals for Binomial proportions (the measured error
//     rate k/M, and inc/dec propagation counts from core.DeltaERCounts) —
//     tight near 0 and 1, where ALS error budgets live.
//   - Hoeffding intervals for means of bounded samples (a ΔER estimate is
//     the mean of M iid per-pattern increments in [-1, +1]) —
//     distribution-free, so they hold even where the estimator's
//     per-pattern increments are far from Bernoulli.
//
// RunStats bundles the per-run gauge set: the current Wilson interval on
// the measured error, its half-width against the ER threshold, the
// Hoeffding half-width of the latest accepted ΔER, and a counter of
// accepts whose interval straddled the constraint — the "sample size
// inadequate" signal that tells an operator M must grow before the
// threshold comparison means anything.

import "math"

// DefaultZ is the two-sided 95% normal quantile used when a zero z is
// passed to Wilson.
const DefaultZ = 1.959963984540054

// Interval is a two-sided confidence interval. Level is the nominal
// coverage (e.g. 0.95); a zero Interval means "not computed".
type Interval struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Level float64 `json:"level"`
}

// HalfWidth returns half the interval's width.
func (iv Interval) HalfWidth() float64 { return (iv.Hi - iv.Lo) / 2 }

// Straddles reports whether x lies strictly inside the interval — the
// sample cannot resolve which side of x the true value is on.
func (iv Interval) Straddles(x float64) bool { return iv.Lo < x && x < iv.Hi }

// Valid reports whether the interval was actually computed.
func (iv Interval) Valid() bool { return iv.Level > 0 }

// Wilson returns the Wilson score interval for a Binomial proportion with
// k successes in n trials at normal quantile z (0 selects DefaultZ, the
// 95% level). Unlike the Wald interval it never escapes [0,1] and keeps
// nominal coverage for k near 0 — exactly the regime of ALS error budgets.
func Wilson(k, n int64, z float64) Interval {
	if z <= 0 {
		z = DefaultZ
	}
	level := math.Erf(z / math.Sqrt2)
	if n <= 0 {
		return Interval{Lo: 0, Hi: 1, Level: level}
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := (p + z2/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo := center - half
	hi := center + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return Interval{Lo: lo, Hi: hi, Level: level}
}

// HoeffdingHalfWidth returns the two-sided (1−delta)-confidence half-width
// for the mean of n iid samples whose support has width span:
//
//	hw = span · sqrt( ln(2/delta) / (2n) )
//
// For a ΔER estimate the per-pattern increment lies in [-1, +1] (a pattern
// becomes newly wrong, newly right, or is unaffected), so span = 2.
func HoeffdingHalfWidth(n int64, span, delta float64) float64 {
	if n <= 0 || span <= 0 || delta <= 0 || delta >= 1 {
		return math.Inf(1)
	}
	return span * math.Sqrt(math.Log(2/delta)/(2*float64(n)))
}

// DeltaERSpan is the per-pattern support width of a ΔER increment.
const DeltaERSpan = 2.0

// Hoeffding returns the symmetric Hoeffding interval around mean.
func Hoeffding(mean float64, n int64, span, delta float64) Interval {
	hw := HoeffdingHalfWidth(n, span, delta)
	return Interval{Lo: mean - hw, Hi: mean + hw, Level: 1 - delta}
}

// RunStats is the per-run confidence gauge set. A nil *RunStats is inert,
// so flows call RecordAccept unconditionally. All gauges live under one
// prefix:
//
//	<prefix>_er_ci_lo / _er_ci_hi / _er_ci_halfwidth   Wilson on measured ER
//	<prefix>_er_ci_margin                              threshold − er_ci_hi
//	<prefix>_delta_ci_halfwidth                        Hoeffding on the accepted ΔER
//	<prefix>_mc_samples                                M
//	<prefix>_ci_inadequate_total (counter)             accepts whose ER interval
//	                                                   straddled the threshold
type RunStats struct {
	threshold float64
	z         float64

	erLo, erHi, erHW *Gauge
	margin           *Gauge
	deltaHW          *Gauge
	samples          *Gauge
	inadequate       *Counter
}

// NewRunStats resolves the confidence gauge set on reg. A nil registry
// yields a nil (inert) RunStats.
func NewRunStats(reg *Registry, prefix string, threshold float64) *RunStats {
	if reg == nil {
		return nil
	}
	return &RunStats{
		threshold:  threshold,
		z:          DefaultZ,
		erLo:       reg.Gauge(prefix + "_er_ci_lo"),
		erHi:       reg.Gauge(prefix + "_er_ci_hi"),
		erHW:       reg.Gauge(prefix + "_er_ci_halfwidth"),
		margin:     reg.Gauge(prefix + "_er_ci_margin"),
		deltaHW:    reg.Gauge(prefix + "_delta_ci_halfwidth"),
		samples:    reg.Gauge(prefix + "_mc_samples"),
		inadequate: reg.Counter(prefix + "_ci_inadequate_total"),
	}
}

// Inadequate returns the count of accepts whose ER interval straddled the
// threshold so far; 0 on a nil RunStats.
func (s *RunStats) Inadequate() int64 {
	if s == nil {
		return 0
	}
	return s.inadequate.Value()
}

// RecordAccept folds one accepted substitution into the gauge set:
// errCount wrong patterns out of m after applying, with the accepted
// candidate's estimated ΔER. It returns the Wilson interval on the
// measured error, the Hoeffding half-width on the ΔER estimate, and
// whether the sample was adequate (the interval did not straddle the
// threshold). On a nil RunStats the values are still computed — tracers
// want them — but no gauges move.
func (s *RunStats) RecordAccept(errCount, m int64, deltaEst float64) (er Interval, deltaHW float64, adequate bool) {
	z := DefaultZ
	threshold := math.NaN()
	if s != nil {
		z = s.z
		threshold = s.threshold
	}
	er = Wilson(errCount, m, z)
	deltaHW = HoeffdingHalfWidth(m, DeltaERSpan, 1-er.Level)
	adequate = math.IsNaN(threshold) || !er.Straddles(threshold)
	if s == nil {
		return er, deltaHW, adequate
	}
	s.erLo.Set(er.Lo)
	s.erHi.Set(er.Hi)
	s.erHW.Set(er.HalfWidth())
	s.margin.Set(s.threshold - er.Hi)
	s.deltaHW.Set(deltaHW)
	s.samples.Set(float64(m))
	if !adequate {
		s.inadequate.Inc()
	}
	return er, deltaHW, adequate
}
