package analyze

import "batchals/internal/circuit"

// FFRs is the fanout-free-region decomposition of a network: every live
// node belongs to exactly one region, identified by its root. A root is a
// node whose value is consumed in more than one place (≥2 distinct fanout
// nodes, or a primary-output binding plus any fanout, or multiple output
// bindings) or not at all; every other node forwards its value to exactly
// one consumer and joins that consumer's region. Within a region a change
// propagates along a unique path, which is what makes the batch estimator
// exact on trees (see Certificate).
type FFRs struct {
	root []circuit.NodeID // root[id] = FFR root of id (InvalidNode for dead slots)
	size map[circuit.NodeID]int
}

// ComputeFFRs builds the decomposition. The network must be acyclic.
func ComputeFFRs(n *circuit.Network) *FFRs {
	f := &FFRs{
		root: make([]circuit.NodeID, n.NumSlots()),
		size: make(map[circuit.NodeID]int),
	}
	for i := range f.root {
		f.root[i] = circuit.InvalidNode
	}

	isOut := make([]bool, n.NumSlots())
	for _, o := range n.Outputs() {
		isOut[o.Node] = true
	}

	order := n.TopoOrder()
	// Reverse topological: fanouts are rooted before their fanins.
	for i := len(order) - 1; i >= 0; i-- {
		id := order[i]
		sinks := distinctFanouts(n, id)
		if len(sinks) == 1 && !isOut[id] {
			f.root[id] = f.root[sinks[0]]
		} else {
			f.root[id] = id
		}
		f.size[f.root[id]]++
	}
	return f
}

// distinctFanouts returns the distinct fanout nodes of id (a node feeding
// two pins of one gate has one distinct fanout).
func distinctFanouts(n *circuit.Network, id circuit.NodeID) []circuit.NodeID {
	fos := n.Fanouts(id)
	if len(fos) <= 1 {
		return fos
	}
	out := make([]circuit.NodeID, 0, len(fos))
	for _, f := range fos {
		dup := false
		for _, g := range out {
			if g == f {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, f)
		}
	}
	return out
}

// Root returns the FFR root of node id.
func (f *FFRs) Root(id circuit.NodeID) circuit.NodeID { return f.root[id] }

// SameRegion reports whether two nodes lie in one fanout-free region.
func (f *FFRs) SameRegion(a, b circuit.NodeID) bool {
	return f.root[a] != circuit.InvalidNode && f.root[a] == f.root[b]
}

// NumRegions returns the number of fanout-free regions.
func (f *FFRs) NumRegions() int { return len(f.size) }

// Size returns the number of nodes in the region rooted at root (0 if root
// is not a region root).
func (f *FFRs) Size(root circuit.NodeID) int { return f.size[root] }

// LargestSize returns the node count of the largest region.
func (f *FFRs) LargestSize() int {
	max := 0
	for _, s := range f.size {
		if s > max {
			max = s
		}
	}
	return max
}

// Roots returns all region roots in ascending id order.
func (f *FFRs) Roots() []circuit.NodeID {
	roots := make([]circuit.NodeID, 0, len(f.size))
	for r := range f.size {
		roots = append(roots, r)
	}
	sortIDs(roots)
	return roots
}
