package lint

import (
	"go/ast"
	"go/types"
)

// AllocFree flags heap-allocating constructs inside functions annotated
// with an //als:allocfree doc directive — the hot paths pinned to zero
// allocations by AllocsPerRun tests (the nil-tracer scoring loop, the
// shard partial-query kernels). The benchmark pins only report *that* a
// path allocated; this analyzer points at *which* construct did, making
// regressions debuggable at review time instead of bisect time.
//
// Flagged constructs: make, new, append, function literals (closure
// environments escape), &composite literals, and slice/map composite
// literals. Struct value literals are not flagged — they stay on the
// stack unless something else (which is flagged) moves them. A construct
// on a line carrying //als:alloc-ok is an acknowledged allocation (e.g. a
// one-time warm-up or an amortised grow) that the pin's baseline absorbs.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "//als:allocfree functions must not contain heap-allocating constructs",
	Run:  runAllocFree,
}

func runAllocFree(p *Pass) {
	if p.TypesInfo == nil {
		return
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, "als:allocfree") {
				continue
			}
			p.checkAllocFree(fn)
		}
	}
}

func (p *Pass) checkAllocFree(fn *ast.FuncDecl) {
	report := func(n ast.Node, what string) {
		if p.suppressed(n.Pos(), "als:alloc-ok") {
			return
		}
		p.Reportf(n.Pos(), "%s in //als:allocfree function %s allocates; hoist it to a scratch buffer or acknowledge with //als:alloc-ok", what, fn.Name.Name)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if name := p.builtinName(x.Fun); name == "make" || name == "new" || name == "append" {
				report(x, name)
			}
		case *ast.FuncLit:
			report(x, "function literal")
			// Still descend: allocations inside the closure body run on the
			// annotated path too.
		case *ast.UnaryExpr:
			if _, ok := x.X.(*ast.CompositeLit); ok {
				report(x, "&composite literal")
			}
		case *ast.CompositeLit:
			if t := p.typeOf(x); t != nil {
				switch types.Unalias(t).Underlying().(type) {
				case *types.Slice, *types.Map:
					report(x, "slice/map literal")
				}
			}
		}
		return true
	})
}

// builtinName returns the name of the predeclared builtin a call invokes,
// or "".
func (p *Pass) builtinName(fun ast.Expr) string {
	id, ok := ast.Unparen(fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, ok := p.objectOf(id).(*types.Builtin); !ok {
		return ""
	}
	return id.Name
}
