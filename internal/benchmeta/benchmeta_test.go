package benchmeta

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: batchals
BenchmarkParallelEstimate-4   	      10	 104857600 ns/op	 1048576 B/op	    4096 allocs/op
BenchmarkFlow/rca8-4          	       1	 500000000 ns/op	     0.850 area_ratio
BenchmarkNoSuffix             	     100	    123456 ns/op
PASS
ok  	batchals	12.3s
`
	benches, err := ParseBenchOutput(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 3 {
		t.Fatalf("parsed %d benches, want 3", len(benches))
	}
	b := benches[0]
	if b.Name != "BenchmarkParallelEstimate" {
		t.Errorf("name = %q (GOMAXPROCS suffix not stripped?)", b.Name)
	}
	if b.Iterations != 10 {
		t.Errorf("iterations = %d, want 10", b.Iterations)
	}
	if b.Metrics["ns/op"] != 104857600 || b.Metrics["B/op"] != 1048576 || b.Metrics["allocs/op"] != 4096 {
		t.Errorf("metrics = %v", b.Metrics)
	}
	if benches[1].Name != "BenchmarkFlow/rca8" {
		t.Errorf("sub-benchmark name = %q, want slash path kept", benches[1].Name)
	}
	if benches[1].Metrics["area_ratio"] != 0.850 {
		t.Errorf("custom metric = %v", benches[1].Metrics)
	}
	if benches[2].Name != "BenchmarkNoSuffix" {
		t.Errorf("suffix-free name mangled: %q", benches[2].Name)
	}
}

func TestTrimProcSuffix(t *testing.T) {
	cases := map[string]string{
		"BenchmarkX-4":          "BenchmarkX",
		"BenchmarkX-16":         "BenchmarkX",
		"BenchmarkX":            "BenchmarkX",
		"BenchmarkA/sub-case-8": "BenchmarkA/sub-case",
		"BenchmarkA/rate-1x":    "BenchmarkA/rate-1x", // non-numeric suffix kept
	}
	for in, want := range cases {
		if got := trimProcSuffix(in); got != want {
			t.Errorf("trimProcSuffix(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := Baseline{
		SchemaVersion: SchemaVersion,
		Benchmarks:    []Bench{{Name: "B", Metrics: map[string]float64{"ns/op": 1}}},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid baseline rejected: %v", err)
	}
	cases := []struct {
		name string
		b    Baseline
	}{
		{"future version", Baseline{SchemaVersion: SchemaVersion + 1,
			Benchmarks: []Bench{{Name: "B", Metrics: map[string]float64{"ns/op": 1}}}}},
		{"no benchmarks", Baseline{SchemaVersion: 2}},
		{"empty name", Baseline{Benchmarks: []Bench{{Metrics: map[string]float64{"ns/op": 1}}}}},
		{"duplicate", Baseline{Benchmarks: []Bench{
			{Name: "B", Metrics: map[string]float64{"ns/op": 1}},
			{Name: "B", Metrics: map[string]float64{"ns/op": 2}}}}},
		{"no metrics", Baseline{Benchmarks: []Bench{{Name: "B"}}}},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid baseline", tc.name)
		}
	}
}

func TestLoadV1Compat(t *testing.T) {
	// A PR2-era baseline: no schema_version, no env.
	v1 := `{
  "generated_with": "go test -bench",
  "benchmarks": [
    {"name": "BenchmarkParallelEstimate", "iterations": 1, "metrics": {"ns/op": 5e8}}
  ]
}`
	path := filepath.Join(t.TempDir(), "v1.json")
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	b, err := Load(path)
	if err != nil {
		t.Fatalf("v1 baseline rejected: %v", err)
	}
	if b.Version() != 1 {
		t.Errorf("Version() = %d, want 1 for legacy documents", b.Version())
	}
	if b.Env != nil {
		t.Error("v1 baseline grew an Env")
	}
	if b.MinIterations() != 1 {
		t.Errorf("MinIterations = %d, want 1", b.MinIterations())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Error("Load accepted invalid JSON")
	}
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Error("Load accepted a missing file")
	}
}

func TestCaptureEnv(t *testing.T) {
	env := CaptureEnv("abc123")
	if env.GoVersion != runtime.Version() {
		t.Errorf("GoVersion = %q", env.GoVersion)
	}
	if env.GOOS != runtime.GOOS || env.GOARCH != runtime.GOARCH {
		t.Errorf("GOOS/GOARCH = %s/%s", env.GOOS, env.GOARCH)
	}
	if env.GOMAXPROCS < 1 || env.NumCPU < 1 {
		t.Errorf("GOMAXPROCS/NumCPU = %d/%d", env.GOMAXPROCS, env.NumCPU)
	}
	if env.Commit != "abc123" {
		t.Errorf("Commit = %q", env.Commit)
	}
}
