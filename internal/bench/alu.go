package bench

import "batchals/internal/circuit"

// ALU4 returns a 4-bit arithmetic-logic unit with the same I/O signature as
// the MCNC alu4 benchmark used in the paper: 14 inputs and 8 outputs. Our
// behavioural definition (see DESIGN.md on the substitution):
//
//	inputs:  a0..a3, b0..b3, op0, op1, cin, mode, x0, x1
//	outputs: f0..f3, cout, zero, parity, aux
//
// In arithmetic mode (mode=1) the unit computes a+b+cin (op1=0) or
// a-b-1+cin via complemented b (op1=1); in logic mode it selects among
// AND/OR/XOR/NOT-a by op1,op0. The spare inputs x0,x1 gate the aux output
// so that all 14 inputs are load-bearing.
func ALU4() *circuit.Network {
	n := circuit.New("alu4")
	a := addInputVector(n, "a", 4)
	b := addInputVector(n, "b", 4)
	op0 := n.AddInput("op0")
	op1 := n.AddInput("op1")
	cin := n.AddInput("cin")
	mode := n.AddInput("mode")
	x0 := n.AddInput("x0")
	x1 := n.AddInput("x1")

	// Arithmetic unit: b conditionally complemented by op1 (subtract).
	bx := make([]circuit.NodeID, 4)
	for i := 0; i < 4; i++ {
		bx[i] = n.AddGate(circuit.KindXor, b[i], op1)
	}
	sum := make([]circuit.NodeID, 4)
	carry := cin
	for i := 0; i < 4; i++ {
		sum[i], carry = fullAdder(n, a[i], bx[i], carry)
	}
	cout := carry

	// Logic unit selected by op1,op0: 00 AND, 01 OR, 10 XOR, 11 NOT a.
	logic := make([]circuit.NodeID, 4)
	for i := 0; i < 4; i++ {
		andG := n.AddGate(circuit.KindAnd, a[i], b[i])
		orG := n.AddGate(circuit.KindOr, a[i], b[i])
		xorG := n.AddGate(circuit.KindXor, a[i], b[i])
		notG := n.AddGate(circuit.KindNot, a[i])
		sel0 := n.AddGate(circuit.KindMux, op0, andG, orG)  // op1=0
		sel1 := n.AddGate(circuit.KindMux, op0, xorG, notG) // op1=1
		logic[i] = n.AddGate(circuit.KindMux, op1, sel0, sel1)
	}

	// Mode mux and flags.
	f := make([]circuit.NodeID, 4)
	for i := 0; i < 4; i++ {
		f[i] = n.AddGate(circuit.KindMux, mode, logic[i], sum[i])
	}
	zero := n.AddGate(circuit.KindNor, f[0], f[1], f[2], f[3])
	par := n.AddGate(circuit.KindXor, f[0], f[1], f[2], f[3])
	xg := n.AddGate(circuit.KindAnd, x0, x1)
	aux := n.AddGate(circuit.KindXor, xg, cout)

	addOutputVector(n, "f", f)
	n.AddOutput("cout", n.AddGate(circuit.KindAnd, cout, mode))
	n.AddOutput("zero", zero)
	n.AddOutput("parity", par)
	n.AddOutput("aux", aux)
	return n
}
