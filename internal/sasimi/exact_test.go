package sasimi

import (
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sim"
)

// TestExactCertificateMatchesExactDelta validates the CPM-exactness
// certificate empirically: for every SASIMI candidate the batch estimator
// flags Exact, the batch ΔER must equal the fully-resimulated ExactDelta
// bit for bit (1e-12 tolerance) on the same pattern set. Reconvergent
// (uncertified) candidates carry no such guarantee — the paper's admitted
// weak spot — and at least some certified candidates must exist so the
// check is not vacuous.
func TestExactCertificateMatchesExactDelta(t *testing.T) {
	// Per-benchmark similarity caps: parity signals sit at p≈0.5, so the
	// pair filter needs a looser cap there to admit any candidate.
	for name, cap := range map[string]float64{
		"dec4": 0.45, "par16": 0.6, "rca8": 0.45, "cmp8": 0.45,
	} {
		golden, err := bench.ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cfg := Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				NumPatterns: 4096,
				Seed:        11,
			},
			Estimator:     EstimatorBatch,
			SimilarityCap: cap,
		}
		cands, err := EstimateAll(golden, golden.Clone(), cfg)
		if err != nil {
			t.Fatalf("%s: EstimateAll: %v", name, err)
		}
		if len(cands) == 0 {
			t.Fatalf("%s: no candidates to check", name)
		}

		// Recreate the estimation context to score candidates exactly.
		cfg.fillDefaults()
		approx := golden.Clone()
		patterns := sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
		goldenVals := sim.Simulate(golden, patterns)
		vals := sim.Simulate(approx, patterns)
		st := emetric.NewState(sim.OutputMatrix(golden, goldenVals), sim.OutputMatrix(approx, vals))

		scratch := bitvec.New(patterns.NumPatterns())
		nExact := 0
		for i := range cands {
			c := &cands[i]
			if !c.Exact {
				continue
			}
			nExact++
			sub := c.substituteValue(vals, scratch)
			want := core.ExactDelta(approx, vals, c.Target, sub, st, core.MetricER)
			if diff := c.Delta - want; diff > 1e-12 || diff < -1e-12 {
				t.Errorf("%s: certified candidate (target %s) batch ΔER %.15f != exact %.15f",
					name, approx.NameOf(c.Target), c.Delta, want)
			}
		}
		if nExact == 0 {
			t.Errorf("%s: no candidate was certified exact; validation is vacuous", name)
		}
		t.Logf("%s: %d/%d candidates certified exact and verified", name, nExact, len(cands))
	}
}

// TestExactFlagByEstimator pins the per-estimator certificate semantics:
// full is always exact, local never, batch according to the structure.
func TestExactFlagByEstimator(t *testing.T) {
	golden, err := bench.ByName("dec4") // tree-like: batch certifies everything
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		kind EstimatorKind
		want bool
	}{
		{EstimatorBatch, true},
		{EstimatorFull, true},
		{EstimatorLocal, false},
	} {
		cands, err := EstimateAll(golden, golden.Clone(), Config{
			Budget: flow.Budget{
				Metric:      core.MetricER,
				NumPatterns: 1024,
				Seed:        3,
			},
			Estimator: tc.kind,
		})
		if err != nil {
			t.Fatalf("%v: %v", tc.kind, err)
		}
		if len(cands) == 0 {
			t.Fatalf("%v: no candidates", tc.kind)
		}
		for i := range cands {
			if cands[i].Exact != tc.want {
				t.Fatalf("%v: candidate %d Exact=%v, want %v", tc.kind, i, cands[i].Exact, tc.want)
			}
		}
	}
}
