// AEM flow: approximate arithmetic circuits under an average-error-
// magnitude budget (the constraint used for arithmetic blocks in the
// paper's Fig. 5 / Table 4), sweeping the budget and printing the achieved
// area for each point — including the comparison against the local
// estimator that cannot see which output bits an error lands on.
package main

import (
	"fmt"
	"log"

	"batchals"
)

func main() {
	for _, name := range []string{"rca16", "mul8"} {
		golden, err := batchals.Benchmark(name)
		if err != nil {
			log.Fatal(err)
		}
		maxVal := float64(uint64(1)<<uint(golden.NumOutputs())) - 1
		fmt.Printf("== %s: area %.0f, outputs encode 0..%.0f ==\n",
			name, batchals.Area(golden), maxVal)
		fmt.Printf("%10s %12s | %10s %10s\n", "AEM rate", "AEM budget", "batch", "local")

		for _, rate := range []float64{0.0005, 0.001, 0.002, 0.005} {
			budget := rate * maxVal
			ratios := make(map[batchals.Estimator]float64)
			for _, est := range []batchals.Estimator{batchals.Batch, batchals.Local} {
				res, err := batchals.Approximate(golden, batchals.Options{
					Metric:      batchals.AvgErrorMagnitude,
					Threshold:   budget,
					Estimator:   est,
					NumPatterns: 5000,
					Seed:        1,
				})
				if err != nil {
					log.Fatal(err)
				}
				ratios[est] = res.AreaRatio()
			}
			fmt.Printf("%9.2f%% %12.1f | %10.3f %10.3f\n",
				100*rate, budget, ratios[batchals.Batch], ratios[batchals.Local])
		}
	}
	fmt.Println("\nlower is better; the batch estimator knows which output bits an")
	fmt.Println("error reaches, so it avoids substitutions that hit significant bits.")
}
