package core

import (
	"testing"

	"batchals/internal/bench"
	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/par"
	"batchals/internal/sim"
)

// pickSubstitution finds a realistic substitution edit on the network:
// a live gate target with at least one admissible substitute (a live
// gate/input outside the target's transitive fanout cone). skip skips that
// many admissible (target, substitute) pairs, so successive calls pick
// different edits.
func pickSubstitution(n *circuit.Network, skip int) (t, s circuit.NodeID, ok bool) {
	for _, tt := range n.LiveNodes() {
		if !n.Kind(tt).IsGate() {
			continue
		}
		tfo := n.TransitiveFanoutCone(tt)
		for _, ss := range n.LiveNodes() {
			k := n.Kind(ss)
			if ss == tt || tfo[ss] || (!k.IsGate() && k != circuit.KindInput) {
				continue
			}
			if skip > 0 {
				skip--
				continue
			}
			return tt, ss, true
		}
	}
	return 0, 0, false
}

// applyEdit performs the substitution surgery exactly as the sasimi flow
// does and returns the structural Edit record plus the value-changed set
// from in-place cone resimulation.
func applyEdit(n *circuit.Network, vals *sim.Values, t, s circuit.NodeID, inverted bool, pool *par.Pool) (Edit, []circuit.NodeID) {
	var ed Edit
	repl := s
	if inverted {
		repl = n.AddGate(circuit.KindNot, s)
		ed.Added = []circuit.NodeID{repl}
	}
	ed.Repl = repl
	ed.Rewired = append([]circuit.NodeID(nil), n.Fanouts(t)...)
	n.ReplaceNode(t, repl)
	ed.Removed, ed.Boundary = n.SweepFromCollect(t)
	_, changed := sim.ResimulateFrom(n, vals, ed.Seeds(), pool)
	for _, id := range ed.Removed {
		vals.Drop(id)
	}
	return ed, changed
}

func compareCPMs(t *testing.T, label string, n *circuit.Network, got, want *CPM) {
	t.Helper()
	if got.NumOutputs() != want.NumOutputs() || got.M() != want.M() {
		t.Fatalf("%s: shape mismatch", label)
	}
	for _, id := range n.LiveNodes() {
		for o := 0; o < want.NumOutputs(); o++ {
			if !got.Prop(id, o).Equal(want.Prop(id, o)) {
				t.Fatalf("%s: P[%d][%d] diverges after refresh", label, id, o)
			}
		}
		if !got.AnyProp(id).Equal(want.AnyProp(id)) {
			t.Fatalf("%s: AnyProp(%d) diverges after refresh", label, id)
		}
		if got.ExactFor(id) != want.ExactFor(id) {
			t.Fatalf("%s: ExactFor(%d) diverges after refresh", label, id)
		}
	}
}

// TestRefreshMatchesRebuild pins the dirty-region CPM refresh against a
// from-scratch rebuild across a chain of realistic substitution edits
// (plain and inverted) at several worker counts.
func TestRefreshMatchesRebuild(t *testing.T) {
	for _, workers := range []int{1, 4} {
		for _, benchName := range []string{"rca8", "cmp8", "dec4"} {
			n, err := bench.ByName(benchName)
			if err != nil {
				t.Fatal(err)
			}
			pool := par.NewPool(workers)
			patterns := sim.RandomPatterns(n.NumInputs(), 512, 5)
			vals := sim.SimulateParallel(n, patterns, pool)
			cpm := BuildParallel(n, vals, pool)

			for edit := 0; edit < 3; edit++ {
				tt, ss, ok := pickSubstitution(n, edit)
				if !ok {
					break
				}
				ed, changed := applyEdit(n, vals, tt, ss, edit%2 == 1, pool)
				stats := cpm.Refresh(ed, changed, pool)
				if stats.TotalRows == 0 || stats.DirtyRows == 0 || stats.DirtyRows > stats.TotalRows {
					t.Fatalf("%s workers=%d edit %d: implausible refresh stats %+v", benchName, workers, edit, stats)
				}
				fresh := BuildParallel(n, vals, pool)
				compareCPMs(t, benchName, n, cpm, fresh)
			}
			pool.Close()
		}
	}
}

// TestRefreshInvalidatesLazyCaches warms every lazy CPM cache (AnyProp
// rows, the exactness certificate, the AEM column memo), applies an edit
// plus Refresh, and checks the caches against a cold rebuild: a stale
// surviving cache entry would make the derived quantities diverge.
func TestRefreshInvalidatesLazyCaches(t *testing.T) {
	n, err := bench.ByName("rca8")
	if err != nil {
		t.Fatal(err)
	}
	golden := n.Clone()
	pool := par.NewPool(2)
	defer pool.Close()
	patterns := sim.RandomPatterns(n.NumInputs(), 512, 9)
	goldenVals := sim.SimulateParallel(golden, patterns, pool)
	goldenOut := sim.OutputMatrix(golden, goldenVals)
	vals := sim.SimulateParallel(n, patterns, pool)
	cpm := BuildParallel(n, vals, pool)

	// Warm AnyProp for every live node, the certificate, and the AEM memo.
	cpm.EnsureAnyProp(n.LiveNodes())
	st := emetric.NewState(goldenOut, sim.OutputMatrix(n, vals))
	cpm.EnsureAEMColumns(st)
	for _, id := range n.LiveNodes() {
		cpm.ExactFor(id)
	}

	tt, ss, ok := pickSubstitution(n, 0)
	if !ok {
		t.Fatal("no substitution available on rca8")
	}
	ed, changed := applyEdit(n, vals, tt, ss, false, pool)
	cpm.Refresh(ed, changed, pool)
	st = emetric.NewState(goldenOut, sim.OutputMatrix(n, vals))
	fresh := BuildParallel(n, vals, pool)

	compareCPMs(t, "rca8", n, cpm, fresh)

	// Derived quantities must come out identical too — they read through
	// the lazy caches, so a stale entry shows up here.
	chg := bitvec.New(vals.M)
	for i := 0; i < vals.M; i += 3 {
		chg.Set(i, true)
	}
	for _, id := range n.LiveNodes() {
		if dGot, dWant := cpm.DeltaER(id, chg, st), fresh.DeltaER(id, chg, st); dGot != dWant {
			t.Fatalf("DeltaER(%d) %v after refresh, want %v", id, dGot, dWant)
		}
		if dGot, dWant := cpm.DeltaAEM(id, chg, st), fresh.DeltaAEM(id, chg, st); dGot != dWant {
			t.Fatalf("DeltaAEM(%d) %v after refresh, want %v", id, dGot, dWant)
		}
	}
}

// TestEngineMatchesScratchState pins the Engine protocol: after NewEngine
// and a chain of Apply calls, the engine's value table, error state and CPM
// are bit-identical to recomputing everything from scratch on the edited
// network.
func TestEngineMatchesScratchState(t *testing.T) {
	n, err := bench.ByName("cmp8")
	if err != nil {
		t.Fatal(err)
	}
	golden := n.Clone()
	pool := par.NewPool(2)
	defer pool.Close()
	patterns := sim.RandomPatterns(n.NumInputs(), 768, 3)
	goldenVals := sim.SimulateParallel(golden, patterns, pool)
	goldenOut := sim.OutputMatrix(golden, goldenVals)

	eng := NewEngine(n, goldenOut, patterns, pool)
	if eng.CPM() == nil {
		t.Fatal("engine CPM is nil")
	}

	for edit := 0; edit < 3; edit++ {
		tt, ss, ok := pickSubstitution(n, edit)
		if !ok {
			break
		}
		var ed Edit
		ed.Repl = ss
		ed.Rewired = append([]circuit.NodeID(nil), n.Fanouts(tt)...)
		n.ReplaceNode(tt, ss)
		ed.Removed, ed.Boundary = n.SweepFromCollect(tt)
		resimmed, _ := eng.Apply(ed)
		if len(resimmed) == 0 && len(ed.Rewired) > 0 {
			t.Fatalf("edit %d: Apply resimulated nothing", edit)
		}

		scratchVals := sim.SimulateParallel(n, patterns, pool)
		for _, id := range n.LiveNodes() {
			if !eng.Vals.Node(id).Equal(scratchVals.Node(id)) {
				t.Fatalf("edit %d: engine value of node %d diverges from scratch simulation", edit, id)
			}
		}
		scratchSt := emetric.NewState(goldenOut, sim.OutputMatrix(n, scratchVals))
		if eng.St.ErrorRate() != scratchSt.ErrorRate() {
			t.Fatalf("edit %d: engine ER %v, scratch %v", edit, eng.St.ErrorRate(), scratchSt.ErrorRate())
		}
		if eng.St.AvgErrorMagnitude() != scratchSt.AvgErrorMagnitude() {
			t.Fatalf("edit %d: engine AEM %v, scratch %v", edit, eng.St.AvgErrorMagnitude(), scratchSt.AvgErrorMagnitude())
		}
		compareCPMs(t, "engine", n, eng.CPM(), BuildParallel(n, scratchVals, pool))
		if stats, full := eng.LastRefresh(); full || stats.DirtyRows == 0 {
			t.Fatalf("edit %d: expected a dirty-region refresh, got full=%v stats=%+v", edit, full, stats)
		}
	}
}
