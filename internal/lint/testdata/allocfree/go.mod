module batchals

go 1.22
