package batchals

// BenchmarkPartitionedFlow measures the partition-and-conquer flow against
// the monolithic SASIMI flow on large Tiled synthetics, under an identical
// ER budget (0.02, M=256, MaxIterations=2). The monolithic flow's
// candidate gather is quadratic in circuit size (every target walks its
// transitive fanout cone and screens every substitute), so the partitioned
// flow wins by a widening margin as circuits grow — the algorithmic point
// of the partitioner, independent of part-level parallelism.
//
// The synth50k-monolithic sub-benchmark takes ~15 CPU-minutes and only
// runs with PARTITION_BENCH_FULL=1 in the environment; its number is
// recorded in BENCH_pr10.json from a full run. CI re-runs everything else
// and exempts exactly that name via benchdiff -allow-missing.

import (
	"context"
	"os"
	"sync"
	"testing"

	"batchals/internal/bench"
)

// partitionBenchCircuits memoises the Tiled synthetics: generation is
// cheap (~100ms at 50k gates) but sharing one instance keeps sub-benchmark
// workloads byte-identical.
var partitionBenchCircuits struct {
	once     sync.Once
	s10, s50 *Network
}

func partitionBenchCircuit(b *testing.B, gates int) *Network {
	b.Helper()
	partitionBenchCircuits.once.Do(func() {
		partitionBenchCircuits.s10 = bench.Tiled("synth10k", 64, 64, 10000, 10)
		partitionBenchCircuits.s50 = bench.Tiled("synth50k", 64, 64, 50000, 50)
	})
	if gates == 10000 {
		return partitionBenchCircuits.s10
	}
	return partitionBenchCircuits.s50
}

func partitionBenchOpts(part bool) Options {
	opts := Options{
		Metric:        ErrorRate,
		Threshold:     0.02,
		NumPatterns:   256,
		Seed:          1,
		MaxIterations: 2,
	}
	if part {
		opts.Partition = &PartitionOptions{TargetCells: 2000}
	}
	return opts
}

func runPartitionBench(b *testing.B, golden *Network, part bool) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fl := NewFlow(golden, partitionBenchOpts(part))
		res, err := fl.Run(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalError > 0.02+1e-9 {
			b.Fatalf("error %g over budget", res.FinalError)
		}
		if i == 0 {
			b.ReportMetric(res.OriginalArea-res.FinalArea, "area_saved")
			if rep := fl.PartitionReport(); rep != nil {
				b.ReportMetric(float64(rep.NumParts), "parts")
			}
		}
	}
}

func BenchmarkPartitionedFlow(b *testing.B) {
	b.Run("synth10k-monolithic", func(b *testing.B) {
		runPartitionBench(b, partitionBenchCircuit(b, 10000), false)
	})
	b.Run("synth10k-partitioned", func(b *testing.B) {
		runPartitionBench(b, partitionBenchCircuit(b, 10000), true)
	})
	b.Run("synth50k-monolithic", func(b *testing.B) {
		if os.Getenv("PARTITION_BENCH_FULL") == "" {
			b.Skip("takes ~15 CPU-minutes; set PARTITION_BENCH_FULL=1 (recorded in BENCH_pr10.json)")
		}
		runPartitionBench(b, partitionBenchCircuit(b, 50000), false)
	})
	b.Run("synth50k-partitioned", func(b *testing.B) {
		runPartitionBench(b, partitionBenchCircuit(b, 50000), true)
	})
}
