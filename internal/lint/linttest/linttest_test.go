package linttest

import (
	"strings"
	"testing"
	"unicode/utf8"
)

func TestParseWantSpec(t *testing.T) {
	cases := []struct {
		spec    string
		want    []string
		wantErr bool
	}{
		{spec: ``, want: nil},
		{spec: ` "one"`, want: []string{"one"}},
		{spec: ` "one" "two"`, want: []string{"one", "two"}},
		{spec: " `raw\\d+`", want: []string{`raw\d+`}},
		{spec: ` "esc\"aped"`, want: []string{`esc"aped`}},
		{spec: ` "ok" trailing prose`, want: []string{"ok"}, wantErr: true},
		{spec: ` "unterminated`, wantErr: true},
		{spec: ` bare`, wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseWantSpec(tc.spec)
		if (err != nil) != tc.wantErr {
			t.Errorf("ParseWantSpec(%q) error = %v, wantErr %v", tc.spec, err, tc.wantErr)
			continue
		}
		if len(got) != len(tc.want) {
			t.Errorf("ParseWantSpec(%q) = %q, want %q", tc.spec, got, tc.want)
			continue
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseWantSpec(%q)[%d] = %q, want %q", tc.spec, i, got[i], tc.want[i])
			}
		}
	}
}

// FuzzWantSpec pins that the want-spec parser never panics and that every
// parsed pattern round-trips out of the input (patterns are substrings of
// the spec modulo quoting, so they must be valid UTF-8 whenever the input
// is).
func FuzzWantSpec(f *testing.F) {
	f.Add(` "one"`)
	f.Add(` "one" "two"`)
	f.Add(" `raw`")
	f.Add(` "esc\"aped" trailing`)
	f.Add(` "unterminated`)
	f.Fuzz(func(t *testing.T, spec string) {
		patterns, err := ParseWantSpec(spec)
		if err != nil {
			return
		}
		for _, p := range patterns {
			if utf8.ValidString(spec) && !utf8.ValidString(p) {
				t.Fatalf("valid input %q produced invalid pattern %q", spec, p)
			}
		}
		if len(patterns) > strings.Count(spec, `"`)+strings.Count(spec, "`") {
			t.Fatalf("spec %q yielded %d patterns, more than its quote count", spec, len(patterns))
		}
	})
}
