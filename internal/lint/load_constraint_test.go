package lint

import (
	"go/parser"
	"go/token"
	"runtime"
	"testing"
)

func TestFileIncluded(t *testing.T) {
	for _, tc := range []struct {
		name string
		src  string
		want bool
	}{
		{"untagged", "package p\n", true},
		{"race tag excluded", "//go:build race\n\npackage p\n", false},
		{"negated race included", "//go:build !race\n\npackage p\n", true},
		{"host os", "//go:build " + runtime.GOOS + "\n\npackage p\n", true},
		{"other os", "//go:build plan9 && !" + runtime.GOOS + "\n\npackage p\n", false},
		{"release tag", "//go:build go1.20\n\npackage p\n", true},
		{"ignore tag", "//go:build ignore\n\npackage p\n", false},
		{"or with custom", "//go:build sometag || " + runtime.GOARCH + "\n\npackage p\n", true},
		{"comment after package ignored", "package p\n\n//go:build race\n", true},
	} {
		f, err := parser.ParseFile(token.NewFileSet(), "x.go", tc.src, parser.ParseComments)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if got := fileIncluded(f); got != tc.want {
			t.Errorf("%s: fileIncluded = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestDefaultBuildTag(t *testing.T) {
	for tag, want := range map[string]bool{
		runtime.GOOS:   true,
		runtime.GOARCH: true,
		"gc":           true,
		"go1.18":       true,
		"race":         false,
		"ignore":       false,
		"msan":         false,
	} {
		if got := defaultBuildTag(tag); got != want {
			t.Errorf("defaultBuildTag(%q) = %v, want %v", tag, got, want)
		}
	}
}
