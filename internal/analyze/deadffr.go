package analyze

import "batchals/internal/circuit"

// checkDeadFFRs flags live nodes whose every distinct fanout lies in a
// dead fanout-free region — a region whose root cannot reach any primary
// output. The per-node unreachable pass already reports the dead nodes
// themselves; this pass reports the frontier feeding them: a node that is
// on an output path (typically because it is bound to a primary output)
// yet fans out only into logic that computes nothing observable. That
// shape almost always means the dead region was supposed to be connected
// somewhere, so it is worth a separate, aggregated finding at the
// boundary instead of one warning per dead gate.
//
// Regions are uniformly dead or live: inside an FFR every node forwards
// its value through a unique consumer chain to the root, so a node
// reaches an output iff its root does. That makes "fanout is in a dead
// region" equivalent to "fanout's FFR root is unreachable".
func checkDeadFFRs(n *circuit.Network, f *FFRs, r *Report) {
	reach := reachableFromOutputs(n)

	var hits []circuit.NodeID
	for _, id := range n.LiveNodes() {
		if !reach[id] {
			continue // already covered by the unreachable/dangling passes
		}
		fos := distinctFanouts(n, id)
		if len(fos) == 0 {
			continue
		}
		allDead := true
		for _, fo := range fos {
			root := f.Root(fo)
			if root == circuit.InvalidNode || reach[root] {
				allDead = false
				break
			}
		}
		if allDead {
			hits = append(hits, id)
		}
	}
	sortIDs(hits)

	for _, id := range hits {
		fos := distinctFanouts(n, id)
		r.add("dead-ffr", SevWarning, id,
			"node %s fans out only into dead fanout-free regions (%d fanout(s), first region rooted at %s); the dead logic was likely meant to be connected",
			n.NameOf(id), len(fos), n.NameOf(f.Root(fos[0])))
	}
}
