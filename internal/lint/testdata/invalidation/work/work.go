package work

import "batchals/internal/core"

// BadEngineWrite mutates engine state directly instead of going through
// Apply.
func BadEngineWrite(e *core.Engine) {
	e.Net = nil // want `direct write to Engine\.Net`
}

// BadEngineStateWrite hits a different field of the same contract.
func BadEngineStateWrite(e *core.Engine) {
	e.St = nil // want `direct write to Engine\.St`
}

// GoodRead reads the exported fields — the documented contract.
func GoodRead(e *core.Engine) *core.Vec {
	return e.Net
}

// GoodApply routes mutation through the engine.
func GoodApply(e *core.Engine) {
	e.Apply(nil)
}

// Acknowledged is an accepted exception.
func Acknowledged(e *core.Engine) {
	e.Vals = nil //als:invalidate-ok test scaffolding resets the table wholesale
}
