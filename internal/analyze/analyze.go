// Package analyze is the structural static-analysis layer over
// circuit.Network: a battery of netlist passes that find defects
// (combinational cycles, dangling and unreachable logic, floating
// constant-driven outputs), compute structural decompositions (fanout-free
// regions, reconvergent fanout stems via post-dominator analysis), and
// derive from them the per-node CPM-exactness certificate — a proof that
// the batch estimator's ΔError is exact for nodes whose output cone is
// reconvergence-free (the paper's Eq. 1–2 evaluate Boolean differences at
// unperturbed side-input values, which is only heuristic under
// reconvergence).
//
// The passes never mutate the network. Everything is pure structure: no
// simulation values are needed, so a Report can be produced for any parsed
// netlist before any Monte Carlo run.
package analyze

import (
	"fmt"
	"sort"
	"strings"

	"batchals/internal/circuit"
)

// Severity ranks a diagnostic.
type Severity int

// Diagnostic severities, most severe first.
const (
	SevError   Severity = iota // structural defect: the netlist is unusable
	SevWarning                 // suspicious structure: likely a netlist bug
	SevInfo                    // informational finding
)

// String returns "error", "warning" or "info".
func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pass string         // pass that produced the finding ("cycle", "dangling", ...)
	Sev  Severity       // severity level
	Node circuit.NodeID // primary node involved, or circuit.InvalidNode
	Msg  string         // human-readable message with node names
}

// String renders the diagnostic as "severity: [pass] message".
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Sev, d.Pass, d.Msg)
}

// Report is the combined result of all passes over one network.
type Report struct {
	Net   *circuit.Network
	Diags []Diagnostic

	// Cyclic is set when the cycle pass found a combinational cycle; the
	// structural decompositions below are then unavailable (nil).
	Cyclic bool

	// Cert is the CPM-exactness certificate (nil when Cyclic).
	Cert *Certificate
	// Stems lists every multi-fanout stem with its reconvergence verdict
	// (nil when Cyclic).
	Stems []Stem
	// FFR is the fanout-free-region decomposition (nil when Cyclic).
	FFR *FFRs
}

// Errors counts diagnostics at SevError.
func (r *Report) Errors() int { return r.countSev(SevError) }

// Warnings counts diagnostics at SevWarning.
func (r *Report) Warnings() int { return r.countSev(SevWarning) }

func (r *Report) countSev(s Severity) int {
	c := 0
	for _, d := range r.Diags {
		if d.Sev == s {
			c++
		}
	}
	return c
}

func (r *Report) add(pass string, sev Severity, node circuit.NodeID, format string, args ...interface{}) {
	r.Diags = append(r.Diags, Diagnostic{
		Pass: pass, Sev: sev, Node: node, Msg: fmt.Sprintf(format, args...),
	})
}

// Run executes every pass over n and returns the combined report. The
// cycle pass runs first; if the network is cyclic the remaining passes
// (which need a DAG) are skipped and the report carries only the cycle
// diagnostic.
func Run(n *circuit.Network) *Report {
	r := &Report{Net: n}

	if cyc := FindCycle(n); cyc != nil {
		r.Cyclic = true
		r.add("cycle", SevError, cyc[0], "combinational cycle: %s", cyclePath(n, cyc))
		return r
	}

	checkStructure(n, r)

	r.FFR = ComputeFFRs(n)
	checkDeadFFRs(n, r.FFR, r)
	r.add("ffr", SevInfo, circuit.InvalidNode,
		"%d fanout-free regions over %d live nodes (largest %d nodes)",
		r.FFR.NumRegions(), n.NumNodes(), r.FFR.LargestSize())

	r.Stems = ReconvergentStems(n)
	nrec := 0
	for _, s := range r.Stems {
		if s.Reconvergent {
			nrec++
			r.add("reconvergence", SevInfo, s.Node,
				"stem %s: %d fanout branches reconverge (first merge at %s)",
				n.NameOf(s.Node), s.NumBranches, n.NameOf(s.MergePoint))
		}
	}

	r.Cert = ExactnessCertificate(n)
	r.add("exactness", SevInfo, circuit.InvalidNode,
		"CPM-exact nodes: %d/%d (%.1f%%); %d reconvergent stems of %d multi-fanout stems",
		r.Cert.NumExact(), r.Cert.NumNodes(), 100*r.Cert.Fraction(), nrec, len(r.Stems))

	return r
}

// cyclePath renders a node cycle as "a -> b -> c -> a".
func cyclePath(n *circuit.Network, cyc []circuit.NodeID) string {
	parts := make([]string, 0, len(cyc)+1)
	for _, id := range cyc {
		parts = append(parts, n.NameOf(id))
	}
	parts = append(parts, n.NameOf(cyc[0]))
	return strings.Join(parts, " -> ")
}

// sortIDs sorts a NodeID slice ascending, for deterministic reports.
func sortIDs(ids []circuit.NodeID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
