package circuit

import (
	"math/rand"
	"testing"
)

func TestPropagateConstantsRules(t *testing.T) {
	build := func() (*Network, NodeID, NodeID, NodeID, NodeID) {
		n := New("pc")
		a := n.AddInput("a")
		b := n.AddInput("b")
		c0 := n.AddConst(false)
		c1 := n.AddConst(true)
		return n, a, b, c0, c1
	}

	cases := []struct {
		name  string
		setup func(n *Network, a, b, c0, c1 NodeID) NodeID // returns output driver
		check func(t *testing.T, n *Network, a, b NodeID)
	}{
		{
			"and with controlling zero",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindAnd, a, c0) },
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Kind(n.Outputs()[0].Node) != KindConst0 {
					t.Fatalf("want const0, got %v", n.Kind(n.Outputs()[0].Node))
				}
			},
		},
		{
			"nand with controlling zero",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindNand, a, c0) },
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Kind(n.Outputs()[0].Node) != KindConst1 {
					t.Fatal("NAND with 0 must be const1")
				}
			},
		},
		{
			"or with identity zero",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindOr, a, c0) },
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Outputs()[0].Node != a {
					t.Fatal("OR(a,0) must collapse to a")
				}
			},
		},
		{
			"nor with identity zero",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindNor, a, c0) },
			func(t *testing.T, n *Network, a, b NodeID) {
				drv := n.Outputs()[0].Node
				if n.Kind(drv) != KindNot || n.Fanins(drv)[0] != a {
					t.Fatal("NOR(a,0) must collapse to NOT(a)")
				}
			},
		},
		{
			"xor absorbs const1 into phase",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindXor, a, b, c1) },
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Kind(n.Outputs()[0].Node) != KindXnor {
					t.Fatalf("XOR(a,b,1) must become XNOR(a,b), got %v", n.Kind(n.Outputs()[0].Node))
				}
			},
		},
		{
			"mux constant select",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindMux, c1, a, b) },
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Outputs()[0].Node != b {
					t.Fatal("MUX(1,a,b) must collapse to b")
				}
			},
		},
		{
			"buffer chain",
			func(n *Network, a, b, c0, c1 NodeID) NodeID {
				return n.AddGate(KindBuf, n.AddGate(KindBuf, a))
			},
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Outputs()[0].Node != a {
					t.Fatal("BUF(BUF(a)) must collapse to a")
				}
			},
		},
		{
			"not of constant",
			func(n *Network, a, b, c0, c1 NodeID) NodeID { return n.AddGate(KindNot, c1) },
			func(t *testing.T, n *Network, a, b NodeID) {
				if n.Kind(n.Outputs()[0].Node) != KindConst0 {
					t.Fatal("NOT(1) must be const0")
				}
			},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			n, a, b, c0, c1 := build()
			drv := c.setup(n, a, b, c0, c1)
			n.AddOutput("o", drv)
			n.PropagateConstants()
			if err := n.Validate(); err != nil {
				t.Fatal(err)
			}
			c.check(t, n, a, b)
		})
	}
}

func TestPropagateConstantsPreservesBehaviour(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		n := randomNetwork(t, r, 5, 40)
		// Inject constants: retarget some gate fanins to fresh constants.
		c0 := n.AddConst(false)
		c1 := n.AddConst(true)
		for _, id := range n.LiveNodes() {
			if !n.Kind(id).IsGate() || r.Intn(4) != 0 {
				continue
			}
			f := n.Fanins(id)[0]
			if f == c0 || f == c1 {
				continue
			}
			if r.Intn(2) == 0 {
				n.ReplaceFanin(id, f, c0)
			} else {
				n.ReplaceFanin(id, f, c1)
			}
		}
		n.Sweep()
		ref := n.Clone()
		n.PropagateConstants()
		if err := n.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		in := make([]bool, 5)
		for k := 0; k < 40; k++ {
			for i := range in {
				in[i] = r.Intn(2) == 1
			}
			if !equalOutputs(ref, n, in) {
				t.Fatalf("trial %d: behaviour changed", trial)
			}
		}
		// No gate may still see a constant fanin except MUX data pins.
		for _, id := range n.LiveNodes() {
			if !n.Kind(id).IsGate() || n.Kind(id) == KindMux {
				continue
			}
			for _, f := range n.Fanins(id) {
				if n.Kind(f).IsConst() {
					t.Fatalf("trial %d: %v gate %d still has constant fanin", trial, n.Kind(id), id)
				}
			}
		}
	}
}

func TestPropagateConstantsIdempotent(t *testing.T) {
	n := New("idem")
	a := n.AddInput("a")
	c1 := n.AddConst(true)
	g := n.AddGate(KindAnd, a, c1)
	n.AddOutput("o", g)
	if n.PropagateConstants() == 0 {
		t.Fatal("first pass removed nothing")
	}
	if n.PropagateConstants() != 0 {
		t.Fatal("second pass should be a no-op")
	}
}
