// Package snap implements a second greedy iterative ALS flow in the spirit
// of Shin & Gupta (DATE 2011): its approximate transformation forces an
// internal signal to constant 0 or 1 ("stuck-at" simplification) and sweeps
// the logic that becomes redundant.
//
// It exists to demonstrate the paper's point that the batch CPM estimator
// is flow-agnostic: snap reuses internal/core unchanged, only the
// transformation space differs from SASIMI. The estimator choice mirrors
// sasimi.EstimatorKind but only Batch and Local are offered (Full would be
// identical in spirit to sasimi's).
package snap

import (
	"fmt"
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/core"
	"batchals/internal/emetric"
	"batchals/internal/flow"
	"batchals/internal/sim"
)

// Config parameterises a snap run. The shared budget fields (Metric,
// Threshold, NumPatterns, Seed, Library, MaxIterations) come from the
// embedded flow.Budget.
type Config struct {
	flow.Budget

	// UseBatch selects the CPM estimator; false falls back to the local
	// toggle-probability estimate.
	UseBatch bool
	// ProbCap skips constants whose local toggle probability exceeds this
	// bound (default 0.4).
	ProbCap float64
}

// Result reports a snap run.
type Result struct {
	Approx        *circuit.Network
	OriginalArea  float64
	FinalArea     float64
	FinalError    float64
	NumIterations int
	TotalTime     time.Duration
}

// AreaRatio returns FinalArea / OriginalArea.
func (r *Result) AreaRatio() float64 {
	if r.OriginalArea == 0 {
		return 1
	}
	return r.FinalArea / r.OriginalArea
}

// Run executes the constant-setting flow on a copy of golden.
func Run(golden *circuit.Network, cfg Config) (*Result, error) {
	start := time.Now()
	cfg.Budget.FillDefaults()
	if cfg.ProbCap == 0 {
		cfg.ProbCap = 0.4
	}
	if err := cfg.Budget.Validate("snap"); err != nil {
		return nil, err
	}
	if cfg.Metric == core.MetricAEM && golden.NumOutputs() > 63 {
		return nil, fmt.Errorf("snap: AEM flow needs <= 63 outputs, have %d", golden.NumOutputs())
	}
	if err := golden.Validate(); err != nil {
		return nil, fmt.Errorf("snap: invalid input network: %w", err)
	}

	patterns := sim.RandomPatterns(golden.NumInputs(), cfg.NumPatterns, cfg.Seed)
	goldenOut := sim.OutputMatrix(golden, sim.Simulate(golden, patterns))
	approx := golden.Clone()

	res := &Result{Approx: approx, OriginalArea: cfg.Library.NetworkArea(golden)}
	res.FinalArea = res.OriginalArea
	m := patterns.NumPatterns()
	change := bitvec.New(m)

	for iter := 1; ; iter++ {
		if cfg.MaxIterations > 0 && iter > cfg.MaxIterations {
			break
		}
		vals := sim.Simulate(approx, patterns)
		st := emetric.NewState(goldenOut, sim.OutputMatrix(approx, vals))
		curErr := cfg.Metric.Value(st)
		res.FinalError = curErr

		var cpm *core.CPM
		if cfg.UseBatch {
			cpm = core.Build(approx, vals)
		}

		// Candidates: every gate stuck at 0 or 1.
		type cand struct {
			target circuit.NodeID
			value  bool
			gain   float64
			delta  float64
		}
		bestScore := -1.0
		var best *cand
		for _, id := range approx.LiveNodes() {
			if !approx.Kind(id).IsGate() {
				continue
			}
			gain := 0.0
			for _, mid := range approx.MFFC(id) {
				gain += cfg.Library.GateArea(approx.Kind(mid), len(approx.Fanins(mid)))
			}
			if gain <= 0 {
				continue
			}
			ones := vals.Node(id).Count()
			for _, v := range []bool{false, true} {
				toggles := ones
				if v {
					toggles = m - ones
				}
				p := float64(toggles) / float64(m)
				if p > cfg.ProbCap {
					continue
				}
				change.CopyFrom(vals.Node(id))
				if v {
					change.Not(change)
				}
				var delta float64
				if cfg.UseBatch {
					if cfg.Metric == core.MetricAEM {
						delta = cpm.DeltaAEM(id, change, st)
					} else {
						delta = cpm.DeltaER(id, change, st)
					}
				} else {
					delta = p
				}
				if curErr+delta > cfg.Threshold+1e-12 {
					continue
				}
				score := scoreOf(gain, delta, m)
				if score > bestScore {
					bestScore = score
					best = &cand{target: id, value: v, gain: gain, delta: delta}
				}
			}
		}
		if best == nil {
			break
		}

		backup := approx.Clone()
		c := approx.AddConst(best.value)
		approx.ReplaceNode(best.target, c)
		approx.SweepFrom(best.target)
		// Fold the freshly planted constant through its fanout logic: the
		// stuck-at simplification's area gain largely comes from here.
		approx.PropagateConstants()

		newVals := sim.Simulate(approx, patterns)
		newSt := emetric.NewState(goldenOut, sim.OutputMatrix(approx, newVals))
		actual := cfg.Metric.Value(newSt)
		if actual > cfg.Threshold+1e-12 {
			*approx = *backup
			break
		}
		res.NumIterations++
		res.FinalArea = cfg.Library.NetworkArea(approx)
		res.FinalError = actual
	}

	res.TotalTime = time.Since(start)
	if err := approx.Validate(); err != nil {
		return nil, fmt.Errorf("snap: flow corrupted the network: %w", err)
	}
	return res, nil
}

func scoreOf(gain, delta float64, m int) float64 {
	floor := 0.1 / float64(m)
	if delta <= 0 {
		return 1e12 * (gain + 1) * (1 - delta)
	}
	if delta < floor {
		delta = floor
	}
	return gain / delta
}
