package blif

import (
	"io"
	"strings"
	"testing"
)

// FuzzParse feeds arbitrary text through the BLIF parser. The parser must
// never panic: it either returns a structured error or a network that
// passes Validate and can be written back out.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Minimal valid model.
		".model tiny\n.inputs a b\n.outputs y\n.names a b y\n11 1\n.end\n",
		// Multi-cube cover with don't-cares and an output inverter.
		".model m\n.inputs a b c\n.outputs y\n.names a b c y\n1-- 1\n-11 1\n.names y z\n0 1\n.end\n",
		// Constant functions (empty cover and tautology).
		".model k\n.inputs a\n.outputs z0 z1\n.names z0\n.names z1\n 1\n.end\n",
		// Line continuations and comments.
		".model c # trailing\n.inputs a \\\n b\n.outputs y\n# comment\n.names a b y\n11 1\n.end\n",
		// Malformed: missing .model header.
		".inputs a\n.outputs y\n.names a y\n1 1\n.end\n",
		// Malformed: cube arity mismatch.
		".model bad\n.inputs a b\n.outputs y\n.names a b y\n1 1\n.end\n",
		// Malformed: duplicate signal definition.
		".model dup\n.inputs a\n.outputs y\n.names a y\n1 1\n.names a y\n0 1\n.end\n",
		// Malformed: undefined signal used as output.
		".model undef\n.inputs a\n.outputs ghost\n.end\n",
		// Truncated mid-cover.
		".model t\n.inputs a b\n.outputs y\n.names a b y\n1",
		// Pathological tokens.
		".model x\n.inputs \x00\n.outputs \xff\n.end\n",
		"",
		".names\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src))
		if err != nil {
			return // rejection with a structured error is fine
		}
		if verr := n.Validate(); verr != nil {
			t.Fatalf("Parse accepted a network that fails Validate: %v\ninput: %q", verr, src)
		}
		if werr := Write(io.Discard, n); werr != nil {
			t.Fatalf("accepted network cannot be written back: %v\ninput: %q", werr, src)
		}
	})
}
