package sim

import (
	"time"

	"batchals/internal/bitvec"
	"batchals/internal/circuit"
	"batchals/internal/obs"
	"batchals/internal/par"
)

// SimulateParallel evaluates the whole network on the pattern set with the
// pattern axis sharded across the pool's workers, and returns per-node
// value vectors bit-identical to Simulate's.
//
// Patterns are independent, so each worker walks the full topological
// order restricted to its word-aligned shard of every value vector: writes
// of different workers land in disjoint uint64 words of shared vectors,
// and each gate word is computed by exactly the same EvalWord call as in
// the sequential path — the result does not depend on the worker count or
// the schedule. A nil or single-worker pool falls through to Simulate,
// the legacy path.
func SimulateParallel(n *circuit.Network, p *Patterns, pool *par.Pool) *Values {
	if pool.Workers() <= 1 {
		return Simulate(n, p)
	}
	if p.NumInputs() != n.NumInputs() {
		panic("sim: pattern set input count mismatch")
	}
	start := time.Now()
	m := p.NumPatterns()
	v := &Values{M: m, vecs: make([]*bitvec.Vec, n.NumSlots())}
	for k, in := range n.Inputs() {
		v.vecs[in] = p.InputRow(k).Clone()
	}
	// Resolve the topological order and allocate every gate vector before
	// the fan-out: workers share the order slice and the vector table
	// read-only, and write only their own word ranges.
	order := n.TopoOrder()
	gates := 0
	for _, id := range order {
		if n.Kind(id) == circuit.KindInput {
			continue
		}
		gates++
		v.vecs[id] = bitvec.New(m)
	}
	shards := par.Shards(m, pool.Workers())
	pool.Label("sim.simulate", obs.PhaseSimulate)
	pool.Do(len(shards), func(_, si int) {
		sh := shards[si]
		buf := make([]uint64, 8)
		for _, id := range order {
			kind := n.Kind(id)
			if kind == circuit.KindInput {
				continue
			}
			fanins := n.Fanins(id)
			if cap(buf) < len(fanins) {
				buf = make([]uint64, len(fanins))
			}
			b := buf[:len(fanins)]
			ow := v.vecs[id].WordsSlice()
			for w := sh.W0; w < sh.W1; w++ {
				for j, f := range fanins {
					b[j] = v.vecs[f].WordsSlice()[w]
				}
				ow[w] = kind.EvalWord(b)
			}
		}
	})
	// Tail bits beyond M may be set by EvalWord in the final word (input
	// rows are masked, but e.g. a NOT of a masked word sets them); clear
	// them once after the join, as the sequential path does per gate.
	tail := bitvec.TailMask(m)
	if tail != ^uint64(0) {
		for _, id := range order {
			if n.Kind(id) != circuit.KindInput {
				v.vecs[id].MaskTail()
			}
		}
	}
	statSimulations.Inc()
	statGateEvals.Add(int64(gates))
	statSimNS.Add(int64(time.Since(start)))
	return v
}
