package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// chdir switches the working directory for one test and restores it.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func TestProbes(t *testing.T) {
	var out bytes.Buffer
	if code := run([]string{"-V=full"}, &out, os.Stderr); code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
	if got := out.String(); !strings.HasPrefix(got, "vetals version ") {
		t.Errorf("-V=full output = %q, want 'vetals version ...'", got)
	}
	out.Reset()
	if code := run([]string{"-flags"}, &out, os.Stderr); code != 0 {
		t.Fatalf("-flags exit = %d, want 0", code)
	}
	if got := strings.TrimSpace(out.String()); got != "[]" {
		t.Errorf("-flags output = %q, want []", got)
	}
}

// TestNegativeFixtures runs standalone mode inside each golden fixture
// mini-module and requires exit status 2: the seeded violations must be
// reported as diagnostics, not type errors (status 1) and not silence
// (status 0). This is the CLI-level half of the acceptance criterion the
// in-process golden tests cover analyzer-by-analyzer.
func TestNegativeFixtures(t *testing.T) {
	fixtures := []string{
		"bitveclen", "randseed", "apipanic", "ctxflow",
		"sharddisjoint", "invalidation", "allocfree", "errwrap",
	}
	base, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata"))
	if err != nil {
		t.Fatal(err)
	}
	for _, fx := range fixtures {
		fx := fx
		t.Run(fx, func(t *testing.T) {
			chdir(t, filepath.Join(base, fx))
			var out, errb bytes.Buffer
			code := run(nil, &out, &errb)
			if code != 2 {
				t.Fatalf("exit = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
			}
			if !strings.Contains(out.String(), fx) {
				t.Errorf("diagnostics should mention analyzer %q:\n%s", fx, out.String())
			}
		})
	}
}

// TestJSONOutput checks that -json emits one well-formed JSON object per
// diagnostic and nothing else on stdout.
func TestJSONOutput(t *testing.T) {
	chdir(t, filepath.Join("..", "..", "internal", "lint", "testdata", "errwrap"))
	var out, errb bytes.Buffer
	code := run([]string{"-json"}, &out, &errb)
	if code != 2 {
		t.Fatalf("exit = %d, want 2\nstderr:\n%s", code, errb.String())
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) == 0 {
		t.Fatal("no JSONL output")
	}
	for _, ln := range lines {
		var d struct {
			Analyzer string
			Message  string
			Pos      struct {
				Filename string
				Line     int
			}
		}
		if err := json.Unmarshal([]byte(ln), &d); err != nil {
			t.Fatalf("bad JSONL line %q: %v", ln, err)
		}
		if d.Analyzer != "errwrap" || d.Message == "" || d.Pos.Filename == "" || d.Pos.Line == 0 {
			t.Errorf("incomplete diagnostic %q", ln)
		}
	}
}

// TestTreeIsClean runs standalone mode over the whole repository and
// requires a clean exit — the same gate CI enforces.
func TestTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check load in -short mode")
	}
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 0 {
		t.Fatalf("vetals on the tree exit = %d, want 0\nstdout:\n%s\nstderr:\n%s",
			code, out.String(), errb.String())
	}
}
