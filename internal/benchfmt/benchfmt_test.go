package benchfmt

import (
	"bytes"
	"strings"
	"testing"

	"batchals/internal/bench"
	"batchals/internal/circuit"
	"batchals/internal/emetric"
	"batchals/internal/sim"
)

const sample = `
# a tiny sample
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(f)
OUTPUT(g)
t1 = AND(a, b)
t2 = NOT(c)
f  = OR(t1, t2)
g  = XOR(a, c)
`

func TestParseSample(t *testing.T) {
	n, err := Parse(strings.NewReader(sample), "sample")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumInputs() != 3 || n.NumOutputs() != 2 || n.NumGates() != 4 {
		t.Fatalf("parsed shape wrong: %s", n.Stats())
	}
	// f(1,1,1) = OR(AND(1,1), NOT(1)) = 1; g = XOR(1,1) = 0
	out := sim.EvalOne(n, []bool{true, true, true})
	if out[0] != true || out[1] != false {
		t.Fatalf("behaviour wrong: %v", out)
	}
}

func TestParseOutOfOrderDefinitions(t *testing.T) {
	src := `
INPUT(a)
INPUT(b)
OUTPUT(f)
f = OR(t1, t2)
t2 = NOT(b)
t1 = AND(a, b)
`
	n, err := Parse(strings.NewReader(src), "ooo")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 3 {
		t.Fatalf("gates=%d", n.NumGates())
	}
}

func TestParseConstsAndMux(t *testing.T) {
	src := `
INPUT(s)
INPUT(d)
OUTPUT(y)
one = CONST1()
y = MUX(s, d, one)
`
	n, err := Parse(strings.NewReader(src), "mux")
	if err != nil {
		t.Fatal(err)
	}
	if got := sim.EvalOne(n, []bool{true, false})[0]; got != true {
		t.Fatal("mux sel=1 must pick const1")
	}
	if got := sim.EvalOne(n, []bool{false, false})[0]; got != false {
		t.Fatal("mux sel=0 must pick d")
	}
}

func TestParseSingleInputAndAsBuf(t *testing.T) {
	src := `
INPUT(a)
OUTPUT(y)
y = AND(a)
`
	n, err := Parse(strings.NewReader(src), "buf")
	if err != nil {
		t.Fatal(err)
	}
	if n.Kind(n.FindByName("y")) != circuit.KindBuf {
		t.Fatal("1-input AND should degrade to BUF")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"undefined output", "INPUT(a)\nOUTPUT(zz)\nf = NOT(a)\n"},
		{"unknown op", "INPUT(a)\nOUTPUT(f)\nf = FROB(a)\n"},
		{"cycle", "INPUT(a)\nOUTPUT(f)\nf = AND(a, g)\ng = NOT(f)\n"},
		{"double definition", "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\nf = BUF(a)\n"},
		{"malformed", "INPUT(a)\nOUTPUT(f)\nf NOT a\n"},
		{"bad arity", "INPUT(a)\nOUTPUT(f)\nf = MUX(a, a)\n"},
		{"duplicate input", "INPUT(a)\nINPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"},
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c.src), c.name); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestRoundTripPreservesBehaviour(t *testing.T) {
	for _, name := range []string{"rca8", "mul4", "alu4", "cmp8"} {
		orig, err := bench.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := Parse(bytes.NewReader(buf.Bytes()), name)
		if err != nil {
			t.Fatalf("%s: reparse: %v\n%s", name, err, buf.String())
		}
		if back.NumInputs() != orig.NumInputs() || back.NumOutputs() != orig.NumOutputs() {
			t.Fatalf("%s: I/O changed", name)
		}
		rep := emetric.Measure(orig, back, sim.RandomPatterns(orig.NumInputs(), 2000, 77))
		if rep.ErrorRate != 0 {
			t.Fatalf("%s: round trip changed behaviour, ER=%v", name, rep.ErrorRate)
		}
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	orig, err := bench.ISCASLike("c880")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "c880")
	if err != nil {
		t.Fatal(err)
	}
	rep := emetric.Measure(orig, back, sim.RandomPatterns(orig.NumInputs(), 1000, 5))
	if rep.ErrorRate != 0 {
		t.Fatalf("round trip changed behaviour, ER=%v", rep.ErrorRate)
	}
}

func TestWriteDisambiguatesDuplicateNames(t *testing.T) {
	n := circuit.New("dup")
	a := n.AddInput("x")
	g1 := n.AddGate(circuit.KindNot, a)
	g2 := n.AddGate(circuit.KindBuf, g1)
	n.SetName(g1, "sig")
	n.SetName(g2, "sig") // collision on purpose
	n.AddOutput("sig", g2)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(bytes.NewReader(buf.Bytes()), "dup")
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	rep := emetric.MeasureExact(n, back)
	if rep.ErrorRate != 0 {
		t.Fatal("behaviour changed")
	}
}
