// Matrix support: a dense matrix of bit vectors, used for the W (wrong
// output), V (approximate output value) and U (golden output value)
// matrices of the batch estimator, each holding one M-bit row per output.
package bitvec

import "fmt"

// Matrix is a rows x bits matrix of packed bit vectors. Row r is an M-bit
// vector; the CPM code uses one row per primary output (or per node).
type Matrix struct {
	rows int
	bits int
	vecs []*Vec
}

// NewMatrix returns a zeroed rows x bits matrix.
func NewMatrix(rows, bits int) *Matrix {
	if rows < 0 {
		panic("bitvec: negative row count")
	}
	m := &Matrix{rows: rows, bits: bits, vecs: make([]*Vec, rows)}
	for i := range m.vecs {
		m.vecs[i] = New(bits)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Bits returns the number of bits per row.
func (m *Matrix) Bits() int { return m.bits }

// Row returns row r. The returned vector is shared, not copied.
func (m *Matrix) Row(r int) *Vec {
	if r < 0 || r >= m.rows {
		panic(fmt.Sprintf("bitvec: Row(%d) out of range [0,%d)", r, m.rows))
	}
	return m.vecs[r]
}

// Get reports bit c of row r.
func (m *Matrix) Get(r, c int) bool { return m.Row(r).Get(c) }

// Set sets bit c of row r.
func (m *Matrix) Set(r, c int, b bool) { m.Row(r).Set(c, b) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{rows: m.rows, bits: m.bits, vecs: make([]*Vec, m.rows)}
	for i, v := range m.vecs {
		c.vecs[i] = v.Clone()
	}
	return c
}

// Column extracts column c across the first 64 rows (or fewer) as a uint64,
// with row r contributing bit r. It is used to reconstruct per-pattern
// output words when computing error magnitudes.
func (m *Matrix) Column(c int) uint64 {
	if m.rows > 64 {
		panic("bitvec: Column requires <= 64 rows")
	}
	var w uint64
	for r := 0; r < m.rows; r++ {
		if m.vecs[r].Get(c) {
			w |= 1 << uint(r)
		}
	}
	return w
}

// OrAll returns the OR of all rows as a fresh vector: bit i is set if any
// row has bit i set. For the W matrix this is the "some output wrong under
// pattern i" mask from Algorithm 1.
func (m *Matrix) OrAll() *Vec {
	out := New(m.bits)
	for _, v := range m.vecs {
		out.Or(out, v)
	}
	return out
}
